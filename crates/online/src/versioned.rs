//! Timestamp-versioned per-key maps — AION's `frontier_ts`/`ongoing_ts`.
//!
//! The paper versions whole maps by timestamp and queries "the latest
//! version before `ts`". We keep one ordered version chain *per key*
//! instead (see DESIGN.md, deviation 2): `get_before(k, e)` is a range
//! query on a `BTreeMap<EventKey, V>`, inserting a version in the middle is
//! `O(log n)`, and the paper's step-③ "touch-up" writes become unnecessary
//! because a version of key `k` is visible to every later event with no
//! intervening version of `k`.

use aion_types::{EventKey, FxHashMap, Key};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A per-key, event-ordered version store.
#[derive(Clone, Debug)]
pub struct VersionedMap<V> {
    keys: FxHashMap<Key, BTreeMap<EventKey, V>>,
    versions: usize,
}

impl<V> Default for VersionedMap<V> {
    fn default() -> Self {
        VersionedMap { keys: FxHashMap::default(), versions: 0 }
    }
}

impl<V> VersionedMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of versions across all keys.
    pub fn len(&self) -> usize {
        self.versions
    }

    /// True when no version is stored.
    pub fn is_empty(&self) -> bool {
        self.versions == 0
    }

    /// Number of keys with at least one version.
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Insert (or replace) the version of `key` at event `at`.
    pub fn insert(&mut self, key: Key, at: EventKey, value: V) -> Option<V> {
        let prev = self.keys.entry(key).or_default().insert(at, value);
        if prev.is_none() {
            self.versions += 1;
        }
        prev
    }

    /// Remove the version of `key` at exactly `at`.
    pub fn remove(&mut self, key: Key, at: EventKey) -> Option<V> {
        let chain = self.keys.get_mut(&key)?;
        let v = chain.remove(&at);
        if v.is_some() {
            self.versions -= 1;
            if chain.is_empty() {
                self.keys.remove(&key);
            }
        }
        v
    }

    /// The latest version of `key` strictly before event `at`
    /// (the paper's `frontier_ts[^ts]`).
    pub fn get_before(&self, key: Key, at: EventKey) -> Option<(EventKey, &V)> {
        self.keys
            .get(&key)?
            .range((Bound::Unbounded, Bound::Excluded(at)))
            .next_back()
            .map(|(e, v)| (*e, v))
    }

    /// The earliest version of `key` strictly after event `at`, if any —
    /// the re-check bound ("until the key is overwritten", paper step ③).
    pub fn next_after(&self, key: Key, at: EventKey) -> Option<EventKey> {
        self.keys.get(&key)?.range((Bound::Excluded(at), Bound::Unbounded)).next().map(|(e, _)| *e)
    }

    /// Iterate versions of `key` strictly before `at`, newest first —
    /// the candidate bases of the read-committed EXT predicate ("some
    /// committed version at the anchor"). Newest-first so the common
    /// case (the observation *is* the frontier) matches on the first
    /// candidate.
    pub fn iter_before(&self, key: Key, at: EventKey) -> impl Iterator<Item = &V> + '_ {
        self.keys
            .get(&key)
            .into_iter()
            .flat_map(move |chain| chain.range((Bound::Unbounded, Bound::Excluded(at))).rev())
            .map(|(_, v)| v)
    }

    /// Iterate versions of `key` within `(lo, hi)` exclusive on both ends.
    pub fn range(
        &self,
        key: Key,
        lo: EventKey,
        hi: EventKey,
    ) -> impl Iterator<Item = (EventKey, &V)> + '_ {
        self.keys
            .get(&key)
            .into_iter()
            .flat_map(move |chain| chain.range((Bound::Excluded(lo), Bound::Excluded(hi))))
            .map(|(e, v)| (*e, v))
    }

    /// Mutable iteration over versions of `key` within `(lo, hi)`.
    pub fn range_mut(
        &mut self,
        key: Key,
        lo: EventKey,
        hi: EventKey,
    ) -> impl Iterator<Item = (EventKey, &mut V)> + '_ {
        self.keys
            .get_mut(&key)
            .into_iter()
            .flat_map(move |chain| chain.range_mut((Bound::Excluded(lo), Bound::Excluded(hi))))
            .map(|(e, v)| (*e, v))
    }

    /// Drop all versions strictly below `horizon`, keeping the latest such
    /// version per key as the base (it is the visible snapshot for reads
    /// just above the horizon). Returns the number of versions dropped.
    pub fn prune_below(&mut self, horizon: EventKey) -> usize {
        let mut dropped = 0;
        self.keys.retain(|_, chain| {
            // Find the latest version < horizon; everything older goes.
            let keep_from = chain
                .range((Bound::Unbounded, Bound::Excluded(horizon)))
                .next_back()
                .map(|(e, _)| *e);
            if let Some(base) = keep_from {
                let old: Vec<EventKey> = chain.range(..base).map(|(e, _)| *e).collect();
                dropped += old.len();
                for e in old {
                    chain.remove(&e);
                }
            }
            !chain.is_empty()
        });
        self.versions -= dropped;
        dropped
    }

    /// Iterate all `(key, event, value)` triples (unspecified key order).
    pub fn iter(&self) -> impl Iterator<Item = (Key, EventKey, &V)> + '_ {
        self.keys.iter().flat_map(|(k, chain)| chain.iter().map(move |(e, v)| (*k, *e, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{Timestamp, TxnId};

    fn ev(ts: u64) -> EventKey {
        EventKey::commit(Timestamp(ts), TxnId(ts))
    }

    #[test]
    fn get_before_is_strict() {
        let mut m = VersionedMap::new();
        m.insert(Key(1), ev(10), "a");
        m.insert(Key(1), ev(20), "b");
        assert_eq!(m.get_before(Key(1), ev(10)), None);
        assert_eq!(m.get_before(Key(1), ev(11)).map(|(_, v)| *v), Some("a"));
        assert_eq!(m.get_before(Key(1), ev(21)).map(|(_, v)| *v), Some("b"));
        assert_eq!(m.get_before(Key(2), ev(100)), None);
    }

    #[test]
    fn next_after_finds_overwrite_bound() {
        let mut m = VersionedMap::new();
        m.insert(Key(1), ev(10), 1);
        m.insert(Key(1), ev(30), 2);
        assert_eq!(m.next_after(Key(1), ev(10)), Some(ev(30)));
        assert_eq!(m.next_after(Key(1), ev(30)), None);
        assert_eq!(m.next_after(Key(9), ev(1)), None);
    }

    #[test]
    fn out_of_order_insertion_lands_in_the_middle() {
        let mut m = VersionedMap::new();
        m.insert(Key(1), ev(10), 1);
        m.insert(Key(1), ev(30), 3);
        m.insert(Key(1), ev(20), 2); // late arrival
        assert_eq!(m.get_before(Key(1), ev(25)).map(|(_, v)| *v), Some(2));
        assert_eq!(m.get_before(Key(1), ev(15)).map(|(_, v)| *v), Some(1));
        assert_eq!(m.next_after(Key(1), ev(10)), Some(ev(20)));
    }

    #[test]
    fn range_is_exclusive_both_ends() {
        let mut m = VersionedMap::new();
        for t in [10, 20, 30, 40] {
            m.insert(Key(1), ev(t), t);
        }
        let got: Vec<u64> = m.range(Key(1), ev(10), ev(40)).map(|(_, v)| *v).collect();
        assert_eq!(got, vec![20, 30]);
    }

    #[test]
    fn range_mut_updates_in_place() {
        let mut m = VersionedMap::new();
        for t in [10, 20, 30] {
            m.insert(Key(1), ev(t), vec![t]);
        }
        for (_, v) in m.range_mut(Key(1), ev(10), ev(31)) {
            v.push(99);
        }
        assert_eq!(m.get_before(Key(1), ev(21)).map(|(_, v)| v.clone()), Some(vec![20, 99]));
        assert_eq!(m.get_before(Key(1), ev(11)).map(|(_, v)| v.clone()), Some(vec![10]));
    }

    #[test]
    fn len_tracks_inserts_and_removes() {
        let mut m = VersionedMap::new();
        assert!(m.is_empty());
        m.insert(Key(1), ev(10), 1);
        m.insert(Key(2), ev(20), 2);
        m.insert(Key(1), ev(10), 3); // replace, not a new version
        assert_eq!(m.len(), 2);
        assert_eq!(m.num_keys(), 2);
        assert_eq!(m.remove(Key(1), ev(10)), Some(3));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(Key(1), ev(10)), None);
        assert_eq!(m.num_keys(), 1);
    }

    #[test]
    fn prune_below_keeps_base_version() {
        let mut m = VersionedMap::new();
        for t in [10, 20, 30, 40] {
            m.insert(Key(1), ev(t), t);
        }
        let dropped = m.prune_below(ev(35));
        // 30 is the base (latest < 35); 10 and 20 are dropped.
        assert_eq!(dropped, 2);
        assert_eq!(m.get_before(Key(1), ev(35)).map(|(_, v)| *v), Some(30));
        assert_eq!(m.get_before(Key(1), ev(12)), None, "pre-base versions gone");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn prune_below_no_versions_below_is_noop() {
        let mut m = VersionedMap::new();
        m.insert(Key(1), ev(50), 1);
        assert_eq!(m.prune_below(ev(40)), 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iter_visits_everything() {
        let mut m = VersionedMap::new();
        m.insert(Key(1), ev(10), 1);
        m.insert(Key(2), ev(20), 2);
        let mut all: Vec<(Key, u64)> = m.iter().map(|(k, _, v)| (k, *v)).collect();
        all.sort();
        assert_eq!(all, vec![(Key(1), 1), (Key(2), 2)]);
    }
}
