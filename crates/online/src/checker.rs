//! AION: the online timestamp-based isolation checker (paper Algorithm 3).
//!
//! Transactions arrive one by one, in session order per session but *not*
//! in timestamp order (asynchrony). The checker maintains timestamp-
//! versioned state and, on every arrival:
//!
//! 1. checks SESSION, INT and the tentative EXT verdicts of the new
//!    transaction against the currently known frontier (step ①);
//! 2. re-checks NOCONFLICT for transactions overlapping it, via the
//!    versioned `ongoing` index (step ②) — arrival-driven, so each
//!    conflicting pair is reported exactly once;
//! 3. re-checks EXT for reads anchored after its commit, up to the next
//!    version of each written key (step ③) — per-key versioning makes the
//!    paper's frontier touch-ups unnecessary (DESIGN.md, deviation 2).
//!
//! EXT verdicts are *tentative* until a per-transaction timeout expires
//! (paper §IV-A, default 5 s); verdict switches in the meantime are the
//! "flip-flops" of §VI-C, tracked by [`crate::stats::FlipTracker`]. Memory
//! is bounded by spill-to-disk GC ([`crate::spill`]).
//!
//! One implementation serves the whole isolation-level lattice: every
//! arrival is checked against *its* resolved [`IsolationLevel`] (the
//! session's [`LevelPolicy`] — uniform, per-session, or the
//! transaction's own declaration), dispatching on the level's
//! [`LevelChecks`](aion_types::LevelChecks) predicate set. Under SI
//! reads anchor at the start event and NOCONFLICT is checked; under SER
//! (AION-SER) reads anchor at the commit event, start timestamps are
//! ignored, and NOCONFLICT is skipped (paper §VI-A); RA is SI without
//! NOCONFLICT; RC anchors at the commit event and only requires reads
//! to observe *some* committed version at the anchor — a monotone
//! predicate under asynchrony (late arrivals can only justify a
//! tentatively-wrong RC read, never invalidate a right one).

use crate::index::{KeyEventIndex, OngoingIndex, ReadRef};
use crate::membership::MembershipIndex;
use crate::spill::{SpillEntry, SpillStore};
use crate::stats::{AionStats, FlipTracker};
use aion_types::{
    base_independent, classify_mismatch, expected_read, CheckEvent, CheckReport, Checker, DataKind,
    EventKey, ExtPredicate, FxHashMap, FxHashSet, IsolationLevel, Key, LevelPolicy, MismatchAxiom,
    Mutation, Op, Outcome, ReadAnchor, SessionId, SessionPredicate, ShardConfig, Snapshot,
    Timestamp, Transaction, TxnId, Violation,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::path::PathBuf;

use crate::versioned::VersionedMap;
#[allow(deprecated)] // compatibility re-export, see `aion_types::check::Mode`
pub use aion_types::check::Mode;

/// Online garbage-collection policy (paper Fig. 12's three strategies).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OnlineGcPolicy {
    /// Never spill (`Aion-no-gc`): memory grows with the history.
    #[default]
    None,
    /// Spill once the resident transaction count exceeds `max_txns`,
    /// keeping ample headroom (`Aion-checking-gc`).
    Checking {
        /// Resident-transaction threshold that triggers a spill pass.
        max_txns: usize,
    },
    /// Hard cap: spill the minimum on every arrival at the limit
    /// (`Aion-full-gc`) — the checker thrashes, as in the paper.
    Full {
        /// Hard resident-transaction limit.
        max_txns: usize,
    },
}

/// Configuration for an online checking session.
///
/// `#[non_exhaustive]`: construct via [`AionConfig::builder`] (or
/// [`OnlineChecker::builder`]) so future knobs stay non-breaking; fields
/// remain `pub` for reading and in-place mutation.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct AionConfig {
    /// Data type of the incoming history.
    pub kind: DataKind,
    /// How fed transactions are assigned isolation levels: one uniform
    /// level (the classic AION / AION-SER modes), a per-session map, or
    /// each transaction's own declared [`Transaction::level`].
    pub levels: LevelPolicy,
    /// EXT finalization timeout in (virtual) milliseconds; the paper uses
    /// a conservative 5 s (§IV-A).
    pub ext_timeout_ms: u64,
    /// Garbage-collection policy.
    pub gc: OnlineGcPolicy,
    /// Collect per-pair flip-flop details (costs memory; enable for the
    /// §VI-C experiments).
    pub track_flip_details: bool,
    /// Ablation switch: disable the paper's step-③ optimization that stops
    /// re-checking at the next overwrite of each key, re-evaluating *every*
    /// later reader instead. Same verdicts, strictly more work.
    pub naive_recheck: bool,
    /// Spill segments to this file instead of in-memory buffers.
    pub spill_path: Option<PathBuf>,
    /// Materialize [`CheckEvent`]s from `receive`/`tick` (default: on).
    /// Turn off for pure-throughput runs that discard the returned
    /// events: verdicts and the report are unaffected, but the per-event
    /// clones and allocations on the hot path are skipped.
    pub events: bool,
    /// Shard layout used when this configuration opens a
    /// [`crate::sharded::ShardedChecker`] session (ignored by the
    /// single-threaded [`OnlineChecker`]).
    pub shard: ShardConfig,
    /// Spill-IO fault-injection plan (testing only, used by the
    /// `aion-dst` harness; `None` in production). Shared across all
    /// shard workers of a session and *not* persisted in checkpoints.
    pub spill_faults: Option<std::sync::Arc<crate::spill::SpillFaultPlan>>,
    /// True when this checker runs as a shard worker under a
    /// coordinator that owns the global (cross-key) checks: duplicate
    /// tid/timestamp detection, SESSION, and Eq. (1) well-formedness are
    /// skipped because the coordinator performs them exactly once per
    /// whole transaction.
    pub(crate) coordinated: bool,
    /// `Some((shard, shards))` for a shard worker: only operations whose
    /// key hashes to `shard` under `shards`-way partitioning are
    /// checked. Transactions arrive whole (so violation `op_index`es
    /// stay anchored to original program order); foreign-key operations
    /// are skipped during footprint derivation.
    pub(crate) shard_filter: Option<(usize, usize)>,
}

impl Default for AionConfig {
    fn default() -> Self {
        AionConfig {
            kind: DataKind::Kv,
            levels: LevelPolicy::default(),
            ext_timeout_ms: 5000,
            gc: OnlineGcPolicy::None,
            track_flip_details: false,
            naive_recheck: false,
            spill_path: None,
            events: true,
            shard: ShardConfig::default(),
            spill_faults: None,
            coordinated: false,
            shard_filter: None,
        }
    }
}

impl AionConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> OnlineCheckerBuilder {
        OnlineCheckerBuilder::default()
    }

    /// The level every transaction resolves to, when the policy is
    /// uniform (the fast path; `None` for genuinely mixed sessions).
    pub fn uniform_level(&self) -> Option<IsolationLevel> {
        self.levels.uniform_level()
    }
}

/// A configuration that cannot open a checking session.
///
/// Surfaced by [`OnlineChecker::try_new`], [`OnlineCheckerBuilder::build`]
/// and [`OnlineCheckerBuilder::build_sharded`] so a monitoring process can
/// handle a bad configuration (fall back to in-memory spilling, alert,
/// retry elsewhere) instead of dying in a constructor.
#[derive(Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// The configured spill file could not be created.
    SpillFile {
        /// The path from [`AionConfig::spill_path`].
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::SpillFile { path, source } => {
                write!(f, "cannot create spill file {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::SpillFile { source, .. } => Some(source),
        }
    }
}

/// Builder for [`AionConfig`] / [`OnlineChecker`] sessions.
///
/// [`build`](Self::build) and [`build_sharded`](Self::build_sharded) are
/// fallible: a configuration can name a spill file that cannot be
/// created, and a monitoring process should see that as a typed
/// [`ConfigError`], not a panic.
///
/// ```
/// use aion_online::{OnlineChecker, OnlineGcPolicy};
/// use aion_types::IsolationLevel;
/// let checker = OnlineChecker::builder()
///     .level(IsolationLevel::Ser)
///     .gc(OnlineGcPolicy::Checking { max_txns: 10_000 })
///     .ext_timeout_ms(5_000)
///     .build()
///     .expect("in-memory sessions cannot fail to open");
/// assert_eq!(checker.config().uniform_level(), Some(IsolationLevel::Ser));
/// ```
#[derive(Clone, Debug, Default)]
pub struct OnlineCheckerBuilder {
    cfg: AionConfig,
}

impl OnlineCheckerBuilder {
    /// Data type of the incoming history (default: key-value).
    pub fn kind(mut self, kind: DataKind) -> Self {
        self.cfg.kind = kind;
        self
    }

    /// Check every transaction at one uniform isolation level (default:
    /// [`IsolationLevel::Si`]).
    pub fn level(mut self, level: IsolationLevel) -> Self {
        self.cfg.levels = LevelPolicy::Uniform(level);
        self
    }

    /// Full level-assignment policy — per-session or per-transaction
    /// mixed-level checking (default: uniform SI).
    pub fn levels(mut self, levels: LevelPolicy) -> Self {
        self.cfg.levels = levels;
        self
    }

    /// Pre-lattice spelling of [`level`](Self::level).
    #[deprecated(since = "0.6.0", note = "renamed to `level` (or `levels` for mixed policies)")]
    pub fn mode(self, mode: IsolationLevel) -> Self {
        self.level(mode)
    }

    /// EXT finalization timeout in virtual milliseconds (default: the
    /// paper's conservative 5 s).
    pub fn ext_timeout_ms(mut self, ms: u64) -> Self {
        self.cfg.ext_timeout_ms = ms;
        self
    }

    /// Garbage-collection policy (default: never spill).
    pub fn gc(mut self, gc: OnlineGcPolicy) -> Self {
        self.cfg.gc = gc;
        self
    }

    /// Collect per-pair flip-flop details (default: off).
    pub fn track_flip_details(mut self, on: bool) -> Self {
        self.cfg.track_flip_details = on;
        self
    }

    /// Disable the step-③ re-check bound (ablation; default: off).
    pub fn naive_recheck(mut self, on: bool) -> Self {
        self.cfg.naive_recheck = on;
        self
    }

    /// Spill segments to this file instead of in-memory buffers.
    pub fn spill_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cfg.spill_path = Some(path.into());
        self
    }

    /// Materialize [`CheckEvent`]s (default: on); see
    /// [`AionConfig::events`].
    pub fn events(mut self, on: bool) -> Self {
        self.cfg.events = on;
        self
    }

    /// Number of shard workers used by [`build_sharded`](Self::build_sharded)
    /// (default: [`ShardConfig::default`]'s 4).
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shard.shards = shards.max(1);
        self
    }

    /// Full shard layout used by [`build_sharded`](Self::build_sharded).
    pub fn shard_config(mut self, shard: ShardConfig) -> Self {
        self.cfg.shard = shard;
        self
    }

    /// Install a spill-IO fault-injection plan (testing only; see
    /// [`crate::spill::SpillFaultPlan`]).
    pub fn spill_faults(mut self, plan: std::sync::Arc<crate::spill::SpillFaultPlan>) -> Self {
        self.cfg.spill_faults = Some(plan);
        self
    }

    /// Finish building the configuration.
    pub fn config(self) -> AionConfig {
        self.cfg
    }

    /// Finish building and open the checking session. Fails with a typed
    /// [`ConfigError`] when the configured spill file cannot be created
    /// (infallible for in-memory spilling, the default).
    pub fn build(self) -> Result<OnlineChecker, ConfigError> {
        OnlineChecker::try_new(self.cfg)
    }

    /// Finish building and open a sharded (parallel) checking session
    /// over [`AionConfig::shard`] worker threads. Fails with a typed
    /// [`ConfigError`] when any worker's spill file cannot be created.
    pub fn build_sharded(self) -> Result<crate::sharded::ShardedChecker, ConfigError> {
        crate::sharded::ShardedChecker::try_new(self.cfg)
    }

    /// Finish building and open a *simulated* sharded session: the
    /// workers run inline under the seeded adversarial schedule instead
    /// of on real threads (the `aion-dst` entry point; see
    /// [`crate::transport::SimSchedule`]).
    pub fn build_sharded_sim(
        self,
        sched: crate::transport::SimSchedule,
    ) -> Result<crate::sharded::ShardedChecker, ConfigError> {
        crate::sharded::ShardedChecker::try_new_sim(self.cfg, sched)
    }
}

/// Tentative per-read checking state (the paper's `T.EXT`, per read).
///
/// `pub(crate)` fields: the checkpoint codec in [`crate::snapshot`]
/// serializes this state verbatim to guarantee byte-identical resumption.
#[derive(Clone, Debug)]
pub(crate) struct ReadState {
    pub(crate) op_index: u32,
    pub(crate) key: Key,
    pub(crate) observed: Snapshot,
    pub(crate) muts_before: Vec<Mutation>,
    /// Current tentative verdict.
    pub(crate) ok: bool,
    /// Settled reads (internal-consistency reads and INT violations) have
    /// final verdicts at arrival and are excluded from EXT re-checking.
    pub(crate) settled: bool,
    /// When the verdict last became wrong (for rectification latency).
    pub(crate) wrong_since: Option<u64>,
}

/// A resident transaction with its derived checking state.
#[derive(Debug)]
pub(crate) struct OnlineTxn {
    pub(crate) txn: Transaction,
    /// The isolation level this transaction is checked at, resolved
    /// from the session's [`LevelPolicy`] once at arrival.
    pub(crate) level: IsolationLevel,
    pub(crate) write_set: Vec<(Key, Snapshot)>,
    pub(crate) reads: Vec<ReadState>,
    /// Keys whose first in-transaction access was a read: their published
    /// values fold over that observation and never change with the
    /// frontier (no cascade).
    pub(crate) anchor_keys: Vec<Key>,
    pub(crate) finalized: bool,
}

impl OnlineTxn {
    /// The event this transaction's reads anchor at, per its level.
    pub(crate) fn anchor(&self) -> EventKey {
        anchor_event(&self.txn, self.level)
    }
}

/// The event a transaction's reads anchor at under `level`.
pub(crate) fn anchor_event(txn: &Transaction, level: IsolationLevel) -> EventKey {
    match level.checks().anchor {
        ReadAnchor::Start => txn.start_event(),
        ReadAnchor::Commit => txn.commit_event(),
    }
}

/// The outcome of an online checking session — the workspace-uniform
/// [`Outcome`], carrying the report plus [`AionStats`] and flip-flop
/// statistics (§VI-C).
pub type AionOutcome = Outcome;

/// The global (cross-key) admission checks: history integrity
/// (duplicate tids/timestamps, Eq. 1 well-formedness) and SESSION.
///
/// Owned in exactly one place per session — by [`OnlineChecker`] when
/// it runs standalone, by the sharding coordinator when workers run
/// `coordinated` — so that single and sharded checking share this code
/// *structurally* instead of keeping two copies in sync.
#[derive(Debug, Default)]
pub(crate) struct GlobalChecks {
    pub(crate) all_tids: FxHashSet<TxnId>,
    pub(crate) ts_owner: FxHashMap<Timestamp, TxnId>,
    pub(crate) next_sno: FxHashMap<SessionId, u32>,
    pub(crate) last_cts: FxHashMap<SessionId, Timestamp>,
}

impl GlobalChecks {
    /// Run every global check on one arrival, pushing violations
    /// through `emit` in report order. Returns `false` when the
    /// transaction is malformed (duplicate tid, or Eq. 1) and must not
    /// touch any versioned state.
    pub(crate) fn admit(
        &mut self,
        txn: &Transaction,
        level: IsolationLevel,
        mut emit: impl FnMut(Violation),
    ) -> bool {
        // --- integrity ---------------------------------------------------
        if !self.all_tids.insert(txn.tid) {
            emit(Violation::DuplicateTid { tid: txn.tid });
            return false;
        }
        let mut tss = vec![txn.start_ts];
        if txn.commit_ts != txn.start_ts {
            tss.push(txn.commit_ts);
        }
        for ts in tss {
            match self.ts_owner.get(&ts) {
                Some(&owner) if owner != txn.tid => {
                    emit(Violation::DuplicateTimestamp { ts, t1: owner, t2: txn.tid });
                }
                _ => {
                    self.ts_owner.insert(ts, txn.tid);
                }
            }
        }

        // --- SESSION -----------------------------------------------------
        let expected = self.next_sno.get(&txn.sid).copied().unwrap_or(0);
        let last_cts = self.last_cts.get(&txn.sid).copied().unwrap_or(Timestamp::MIN);
        let violated = match level.checks().session {
            // Snapshot-ordered levels (SI, RA): must follow the
            // predecessor and start after it committed.
            SessionPredicate::SnapshotOrder => txn.sno != expected || txn.start_ts < last_cts,
            // Commit-ordered levels (SER, RC): start timestamps are
            // ignored; session order must embed into commit order.
            SessionPredicate::CommitOrder => txn.sno != expected || txn.commit_ts <= last_cts,
        };
        if violated {
            emit(Violation::Session {
                tid: txn.tid,
                sid: txn.sid,
                expected_sno: expected,
                found_sno: txn.sno,
                start_ts: txn.start_ts,
                last_commit_ts: last_cts,
            });
        }
        self.next_sno.insert(txn.sid, txn.sno + 1);
        self.last_cts.insert(txn.sid, txn.commit_ts);

        // --- Eq. (1) -----------------------------------------------------
        if txn.start_ts > txn.commit_ts {
            emit(Violation::TimestampOrder {
                tid: txn.tid,
                start_ts: txn.start_ts,
                commit_ts: txn.commit_ts,
            });
            return false; // malformed: do not poison the versioned state
        }
        true
    }
}

/// Stable `"aion-…"` checker name for a level policy (interned: the
/// `Checker` trait hands out `&'static str`).
pub(crate) fn aion_level_name(levels: &LevelPolicy) -> &'static str {
    match levels.uniform_level() {
        Some(IsolationLevel::ReadCommitted) => "aion-rc",
        Some(IsolationLevel::ReadAtomic) => "aion-ra",
        Some(IsolationLevel::Si) => "aion-si",
        Some(IsolationLevel::Ser) => "aion-ser",
        Some(_) => "aion",
        None => "aion-mixed",
    }
}

/// The online checker. Drive it with [`receive`](Self::receive) and
/// [`tick`](Self::tick), then [`finish`](Self::finish) — or through the
/// polymorphic [`Checker`] trait, whose `feed`/`tick` delegate here.
/// Every call returns the typed [`CheckEvent`]s it produced, so
/// violations, verdict flips, finalizations and GC passes are visible
/// *while* the history streams in.
pub struct OnlineChecker {
    pub(crate) cfg: AionConfig,
    /// Whether any level the policy can produce activates NOCONFLICT —
    /// when false (e.g. uniform SER/RA/RC) the overlap index is never
    /// touched, keeping the hot path as cheap as the old global branch.
    pub(crate) track_overlaps: bool,
    /// Whether any level the policy can produce uses the
    /// [`ExtPredicate::Committed`] membership predicate — when false,
    /// the extended trigger sweep for committed-readers is skipped.
    pub(crate) has_committed_ext: bool,
    pub(crate) txns: FxHashMap<TxnId, OnlineTxn>,
    pub(crate) globals: GlobalChecks,
    pub(crate) frontier: VersionedMap<Snapshot>,
    /// Committed-membership summaries for the RC EXT predicate; only
    /// populated when `has_committed_ext`, and — unlike the frontier —
    /// never pruned by GC, which is what lets the frontier shed its
    /// version chains under RC/mixed policies (see
    /// [`MembershipIndex`]).
    pub(crate) membership: MembershipIndex,
    pub(crate) readers: KeyEventIndex<ReadRef>,
    pub(crate) writers: KeyEventIndex<TxnId>,
    pub(crate) ongoing: OngoingIndex,
    pub(crate) deadlines: BinaryHeap<Reverse<(u64, TxnId)>>,
    pub(crate) triggers: VecDeque<(Key, EventKey)>,
    pub(crate) spill: SpillStore,
    /// Largest commit timestamp ever spilled; arrivals at or below it must
    /// reload first.
    pub(crate) gc_horizon_ts: Option<Timestamp>,
    /// Everything spilled at or below this timestamp is known resident:
    /// `reload_below` passes bounded by it are no-ops. Advanced after a
    /// fully successful reload pass, pulled back when a spill pass
    /// re-evicts below it; never advanced past a failed segment, so
    /// failures stay retryable.
    pub(crate) reload_floor: Timestamp,
    /// Diagnostic: how many `reload_below` passes actually scanned the
    /// segment list (i.e. were not short-circuited by `reload_floor`).
    /// Not persisted; the watermark regression test pins that this stops
    /// growing on repeated straggler passes.
    pub(crate) reload_scans: u64,
    pub(crate) now_ms: u64,
    pub(crate) report: CheckReport,
    pub(crate) flips: FlipTracker,
    pub(crate) stats: AionStats,
    /// Events produced since the last `receive`/`tick` returned.
    pub(crate) events: Vec<CheckEvent>,
}

impl OnlineChecker {
    /// A checker with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configured spill file cannot be created; use
    /// [`OnlineChecker::try_new`] (or the builder's fallible
    /// [`OnlineCheckerBuilder::build`]) to handle that as a typed
    /// [`ConfigError`] instead.
    pub fn new(cfg: AionConfig) -> OnlineChecker {
        OnlineChecker::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A checker with the given configuration, surfacing configuration
    /// problems (an uncreatable spill file) as a typed error instead of
    /// panicking.
    pub fn try_new(cfg: AionConfig) -> Result<OnlineChecker, ConfigError> {
        let mut spill = match &cfg.spill_path {
            Some(path) => SpillStore::on_disk(path.clone())
                .map_err(|source| ConfigError::SpillFile { path: path.clone(), source })?,
            None => SpillStore::in_memory(),
        };
        spill.set_faults(cfg.spill_faults.clone());
        let flips = FlipTracker::new(cfg.track_flip_details);
        let track_overlaps = cfg.levels.may_activate(|c| c.noconflict);
        let has_committed_ext = cfg.levels.may_activate(|c| c.ext == ExtPredicate::Committed);
        Ok(OnlineChecker {
            cfg,
            track_overlaps,
            has_committed_ext,
            txns: FxHashMap::default(),
            globals: GlobalChecks::default(),
            frontier: VersionedMap::new(),
            membership: MembershipIndex::new(),
            readers: KeyEventIndex::new(),
            writers: KeyEventIndex::new(),
            ongoing: OngoingIndex::new(),
            deadlines: BinaryHeap::new(),
            triggers: VecDeque::new(),
            spill,
            gc_horizon_ts: None,
            reload_floor: Timestamp::MIN,
            reload_scans: 0,
            now_ms: 0,
            report: CheckReport::new(),
            flips,
            stats: AionStats::default(),
            events: Vec::new(),
        })
    }

    /// Start building a checking session from the default configuration.
    pub fn builder() -> OnlineCheckerBuilder {
        OnlineCheckerBuilder::default()
    }

    /// The session's configuration.
    pub fn config(&self) -> &AionConfig {
        &self.cfg
    }

    /// Stable checker name: `"aion-<level>"` for uniform sessions,
    /// `"aion-mixed"` for per-session/per-transaction policies.
    pub fn checker_name(&self) -> &'static str {
        aion_level_name(&self.cfg.levels)
    }

    /// Commit a violation to the report and the event stream.
    fn emit(&mut self, v: Violation) {
        if self.cfg.events {
            self.events.push(CheckEvent::Violation(v.clone()));
        }
        self.report.push(v);
    }

    /// Stream a non-violation event (skipped when events are off).
    fn emit_event(&mut self, e: impl FnOnce() -> CheckEvent) {
        if self.cfg.events {
            self.events.push(e());
        }
    }

    /// Hand the caller everything emitted since the last call.
    fn take_events(&mut self) -> Vec<CheckEvent> {
        std::mem::take(&mut self.events)
    }

    /// An SI checker with default settings.
    pub fn new_si(kind: DataKind) -> OnlineChecker {
        OnlineChecker::new(AionConfig { kind, ..AionConfig::default() })
    }

    /// A SER checker with default settings.
    pub fn new_ser(kind: DataKind) -> OnlineChecker {
        OnlineChecker::new(AionConfig {
            kind,
            levels: LevelPolicy::Uniform(IsolationLevel::Ser),
            ..AionConfig::default()
        })
    }

    fn frontier_at(&self, key: Key, at: EventKey) -> Snapshot {
        self.frontier
            .get_before(key, at)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| Snapshot::initial(self.cfg.kind))
    }

    /// Evaluate one external read under `ext`, against the versions
    /// currently known.
    ///
    /// * [`ExtPredicate::Frontier`] — the observation must fold from the
    ///   latest version before the anchor (the paper's EXT).
    /// * [`ExtPredicate::Committed`] — the observation must fold from
    ///   *some* version before the anchor (or the initial value).
    ///   Base-independent mutation chains (put-rooted) collapse to a
    ///   single comparison; base-dependent chains (list appends) fall
    ///   back to the frontier base, matching CHRONOS-RC's `int_val`
    ///   convention, so online and offline RC verdicts agree on list
    ///   histories too.
    fn read_ok(
        &self,
        ext: ExtPredicate,
        key: Key,
        anchor: EventKey,
        muts: &[Mutation],
        observed: &Snapshot,
    ) -> bool {
        match ext {
            ExtPredicate::Frontier => {
                expected_read(&self.frontier_at(key, anchor), muts) == *observed
            }
            ExtPredicate::Committed => {
                if !muts.is_empty() && !base_independent(muts) {
                    return expected_read(&self.frontier_at(key, anchor), muts) == *observed;
                }
                if expected_read(&Snapshot::initial(self.cfg.kind), muts) == *observed {
                    return true;
                }
                if !muts.is_empty() {
                    // Base-independent: every base folds the same.
                    return false;
                }
                // Incremental committed-membership index: answers "some
                // committed version of `key` below `anchor` equals the
                // observation" in O(log n) instead of walking the key's
                // version chain — and keeps answering after GC pruned
                // the chain, since summaries survive `prune_below`.
                self.membership.contains_before(key, anchor, observed)
            }
        }
    }

    /// Violations reported so far.
    pub fn report(&self) -> &CheckReport {
        &self.report
    }

    /// Runtime counters so far.
    pub fn stats(&self) -> AionStats {
        self.stats
    }

    /// Transactions currently resident in memory.
    pub fn resident_txns(&self) -> usize {
        self.txns.len()
    }

    /// True when `tid` is resident with tentative (not yet finalized)
    /// EXT verdicts — used by shard workers to tell the coordinator
    /// whether an `ExtFinalized` event will eventually follow.
    pub(crate) fn is_pending(&self, tid: TxnId) -> bool {
        self.txns.get(&tid).is_some_and(|t| !t.finalized)
    }

    /// Rough estimate of live checker memory, for the constrained-memory
    /// experiment (Fig. 16).
    ///
    /// Covers the resident transactions and versioned indexes, the
    /// spill store's buffered segments (the in-memory backend *retains*
    /// every spilled byte, so spilling without a disk path does not
    /// reduce process memory), and the transient event/deadline/trigger
    /// buffers. The `memory_estimate_*` test pins this arithmetic
    /// against the component accessors.
    pub fn estimated_memory_bytes(&self) -> usize {
        let mut bytes = self.state_bytes_estimate();
        bytes += self.spill.buffered_bytes();
        bytes += self.deadlines.len() * std::mem::size_of::<Reverse<(u64, TxnId)>>();
        bytes += self.triggers.len() * std::mem::size_of::<(Key, EventKey)>();
        bytes += self.events.capacity() * std::mem::size_of::<CheckEvent>();
        bytes
    }

    /// The resident-state share of [`Self::estimated_memory_bytes`]:
    /// transactions, frontier versions and the read/write/overlap
    /// indexes (no spill-store or buffer overhead).
    fn state_bytes_estimate(&self) -> usize {
        let mut bytes = 0usize;
        // aion-lint: allow(determinism) — commutative sum; visit order
        // cannot affect the estimate
        for t in self.txns.values() {
            bytes += 128 + t.txn.ops.len() * 48 + t.reads.len() * 96 + t.write_set.len() * 56;
        }
        bytes += self.frontier.len() * 72;
        bytes += self.membership.approx_bytes();
        bytes += self.ongoing.len() * 64;
        bytes += self.readers.len() * 40 + self.writers.len() * 40;
        bytes
    }

    /// Advance the (virtual) clock and finalize every transaction whose
    /// EXT timeout has expired (paper's `TIMEOUT` procedure), returning
    /// the finalizations and EXT violations that produced.
    pub fn tick(&mut self, now_ms: u64) -> Vec<CheckEvent> {
        self.now_ms = self.now_ms.max(now_ms);
        while let Some(&Reverse((deadline, tid))) = self.deadlines.peek() {
            if deadline > self.now_ms {
                break;
            }
            self.deadlines.pop();
            self.finalize_txn(tid);
        }
        self.take_events()
    }

    /// Finalize everything regardless of deadlines (end of stream).
    pub fn drain(&mut self) -> Vec<CheckEvent> {
        while let Some(Reverse((_, tid))) = self.deadlines.pop() {
            self.finalize_txn(tid);
        }
        self.take_events()
    }

    /// Drain and produce the outcome.
    pub fn finish(mut self) -> AionOutcome {
        self.drain();
        Outcome::new(self.checker_name(), self.report, self.stats.received)
            .with_stats(self.stats)
            .with_flips(self.flips.summary())
    }

    /// Receive one transaction at (virtual) time `now_ms`, returning the
    /// events this arrival produced: definitive violations, tentative
    /// verdict flips of earlier transactions, and GC spill passes.
    pub fn receive(&mut self, txn: Transaction, now_ms: u64) -> Vec<CheckEvent> {
        self.now_ms = self.now_ms.max(now_ms);
        self.stats.received += 1;
        let level = self.cfg.levels.level_for(&txn);

        // Under a sharding coordinator the global (cross-key) checks have
        // already run exactly once for the whole transaction (through the
        // same `GlobalChecks` code); this worker only sees well-formed,
        // deduplicated sub-footprints.
        if !self.cfg.coordinated {
            let mut violations = Vec::new();
            let admitted = self.globals.admit(&txn, level, |violation| violations.push(violation));
            for violation in violations {
                self.emit(violation);
            }
            if !admitted {
                return self.take_events();
            }
        }

        // --- reload spilled state if this arrival reaches below the GC
        //     horizon (deep straggler) ---------------------------------------
        if let Some(horizon) = self.gc_horizon_ts {
            let anchor_ts = match level.checks().anchor {
                ReadAnchor::Start => txn.start_ts,
                ReadAnchor::Commit => txn.commit_ts,
            };
            if anchor_ts <= horizon {
                self.reload_below(txn.commit_ts);
            }
        }

        self.process(txn, level);
        self.maybe_gc();
        self.stats.peak_resident_txns = self.stats.peak_resident_txns.max(self.txns.len());
        self.take_events()
    }

    /// Steps ①–③ for a well-formed arrival, checked at `level`.
    fn process(&mut self, txn: Transaction, level: IsolationLevel) {
        let tid = txn.tid;
        let checks = level.checks();
        let anchor = anchor_event(&txn, level);
        let commit_ev = txn.commit_event();

        // -- derive read states and the write set ---------------------------
        // `anchored` mirrors CHRONOS's `int_val` rule: the *first* access to
        // a key being a read pins that observation as the base for every
        // later access to the key in this transaction. Such later reads are
        // stable under asynchrony (they do not consult the frontier) and
        // settle immediately; only first reads (and reads over write-first
        // append chains) are frontier-dependent and tentative.
        let mut muts_so_far: FxHashMap<Key, Vec<Mutation>> = FxHashMap::default();
        let mut anchored: FxHashMap<Key, Snapshot> = FxHashMap::default();
        let mut reads: Vec<ReadState> = Vec::new();
        for (op_index, op) in txn.ops.iter().enumerate() {
            if let Some((mine, shards)) = self.cfg.shard_filter {
                // Foreign keys belong to another shard worker; skipping
                // them here (rather than re-numbering a filtered ops
                // vector) keeps `op_index` anchored to program order.
                if crate::feed::shard_of(op.key(), shards) != mine {
                    continue;
                }
            }
            match op {
                Op::Read { key, value } => {
                    let muts_before = muts_so_far.get(key).cloned().unwrap_or_default();
                    let mut r = ReadState {
                        op_index: op_index as u32,
                        key: *key,
                        observed: value.clone(),
                        muts_before,
                        ok: true,
                        settled: false,
                        wrong_since: None,
                    };
                    if let Some(base) = anchored.get(key) {
                        // Internal consistency vs. the anchored observation:
                        // stable — verdict final now.
                        let expected = expected_read(base, &r.muts_before);
                        if expected != r.observed {
                            let v = match classify_mismatch(&r.muts_before, &r.observed) {
                                MismatchAxiom::Int => Violation::Int {
                                    tid,
                                    key: *key,
                                    op_index,
                                    expected,
                                    observed: r.observed.clone(),
                                },
                                MismatchAxiom::Ext => Violation::Ext {
                                    tid,
                                    key: *key,
                                    op_index,
                                    expected,
                                    observed: r.observed.clone(),
                                },
                            };
                            self.emit(v);
                        }
                        r.settled = true;
                    } else if r.muts_before.is_empty() {
                        // First access to the key is this read: anchor it.
                        anchored.insert(*key, value.clone());
                    }
                    reads.push(r);
                }
                Op::Write { key, mutation } => {
                    muts_so_far.entry(*key).or_default().push(*mutation);
                }
            }
        }
        // Published value per key: fold over the anchored observation when
        // the key was read first (CHRONOS's int_val chain), else over the
        // frontier snapshot at the anchor event.
        let mut write_set: Vec<(Key, Snapshot)> = muts_so_far
            .iter()
            .map(|(key, muts)| {
                let base = match anchored.get(key) {
                    Some(a) => a.clone(),
                    None => self.frontier_at(*key, anchor),
                };
                (*key, expected_read(&base, muts))
            })
            .collect();
        write_set.sort_unstable_by_key(|(k, _)| *k);
        let mut anchor_keys: Vec<Key> = anchored.keys().copied().collect();
        anchor_keys.sort_unstable();

        // -- step ①: tentative verdicts against the known versions ----------
        for r in reads.iter_mut() {
            if r.settled {
                continue;
            }
            if self.read_ok(checks.ext, r.key, anchor, &r.muts_before, &r.observed) {
                r.ok = true;
                // A committed-predicate `ok` is final when versions are
                // never withdrawn (the membership set only grows), so the
                // read settles now instead of riding the reader index —
                // and the timeout queue — until its deadline.
                if checks.ext == ExtPredicate::Committed
                    && self.committed_ok_is_final(&r.muts_before)
                {
                    r.settled = true;
                }
            } else {
                let base = self.frontier_at(r.key, anchor);
                let expected = expected_read(&base, &r.muts_before);
                match classify_mismatch(&r.muts_before, &r.observed) {
                    MismatchAxiom::Int => {
                        // Stable under asynchrony: report immediately.
                        self.emit(Violation::Int {
                            tid,
                            key: r.key,
                            op_index: r.op_index as usize,
                            expected,
                            observed: r.observed.clone(),
                        });
                        r.settled = true;
                        r.ok = true;
                    }
                    MismatchAxiom::Ext => {
                        r.ok = false;
                        r.wrong_since = Some(self.now_ms);
                    }
                }
            }
        }

        // -- index reads and writes -----------------------------------------
        for (idx, r) in reads.iter().enumerate() {
            if !r.settled {
                self.readers.insert(r.key, anchor, ReadRef { tid, read_idx: idx as u32 });
            }
        }
        for (key, _) in &write_set {
            self.writers.insert(*key, anchor, tid);
        }

        // -- step ③: publish versions and re-check affected readers ---------
        for (key, snap) in &write_set {
            let prev = self.frontier.insert(*key, commit_ev, snap.clone());
            if self.has_committed_ext {
                self.membership.record(*key, commit_ev, snap, prev.as_ref());
            }
        }
        for (key, _) in &write_set {
            self.triggers.push_back((*key, commit_ev));
        }

        // -- step ②: NOCONFLICT via overlap registration --------------------
        // Every writer registers whenever *some* level of the policy
        // activates NOCONFLICT (an overlap is a pair property — the
        // partner's level matters too); a conflict is reported when
        // either member's level forbids concurrent writers, following
        // the mixed-level convention that an SI transaction's
        // first-committer-wins guarantee binds whoever overlaps it.
        // Each writer's own NOCONFLICT activation travels *inside* the
        // overlap index, so the pair rule stays exact even when the
        // partner has been spilled out of resident memory.
        let mut conflicts: Vec<(Key, crate::index::OngoingWriter)> = Vec::new();
        if self.track_overlaps {
            for (key, _) in &write_set {
                for other in self.ongoing.register(
                    *key,
                    tid,
                    checks.noconflict,
                    txn.start_event(),
                    commit_ev,
                    false,
                ) {
                    conflicts.push((*key, other));
                }
            }
        }
        for (key, other) in conflicts {
            if !checks.noconflict && !other.noconflict {
                continue;
            }
            // The earlier committer reports (matching CHRONOS's convention).
            let other_cts =
                self.txns.get(&other.tid).map(|t| t.txn.commit_ts).unwrap_or(Timestamp::MIN);
            let (t1, t2) =
                if other_cts < txn.commit_ts { (other.tid, tid) } else { (tid, other.tid) };
            self.emit(Violation::NoConflict { key, t1, t2 });
        }

        // -- register the transaction and its deadline ----------------------
        let pending = reads.iter().any(|r| !r.settled);
        let finalized = !pending;
        if finalized {
            self.stats.finalized += 1;
        } else {
            self.deadlines.push(Reverse((self.now_ms + self.cfg.ext_timeout_ms, tid)));
        }
        self.txns.insert(tid, OnlineTxn { txn, level, write_set, reads, anchor_keys, finalized });

        self.process_triggers();
    }

    /// Re-check readers (and, for lists, dependent writers) in the window
    /// `(from, next version of key)` after a version insertion at `from`.
    ///
    /// Frontier-predicate readers anchored past the next version of the
    /// key are untouched by construction (their visible frontier did not
    /// change). Committed-predicate (RC) readers have no such window —
    /// *any* version below their anchor can justify their observation —
    /// so when the policy can produce them, a second sweep re-evaluates
    /// just those readers beyond the bound.
    fn process_triggers(&mut self) {
        while let Some((key, from)) = self.triggers.pop_front() {
            let bound = if self.cfg.naive_recheck {
                EventKey::INFINITY
            } else {
                self.frontier.next_after(key, from).unwrap_or(EventKey::INFINITY)
            };
            for (anchor_ev, rref) in self.readers.range(key, from, bound) {
                self.re_evaluate(rref, key, anchor_ev, false);
            }
            if self.has_committed_ext && bound != EventKey::INFINITY {
                for (anchor_ev, rref) in self.readers.range(key, bound, EventKey::INFINITY) {
                    self.re_evaluate(rref, key, anchor_ev, true);
                }
            }
            if self.cfg.kind == DataKind::List {
                // Append results depend on their base snapshot: writers in
                // the window must recompute and cascade.
                for (anchor_ev, wtid) in self.writers.range(key, from, bound) {
                    self.recompute_writer(wtid, key, anchor_ev);
                }
            }
        }
    }

    /// True when a committed-predicate read that currently holds `ok`
    /// can never lose it: outside [`DataKind::List`] no published
    /// version is ever withdrawn (only list cascades revise), so the
    /// committed-membership set for a first read only grows, and a
    /// base-dependent read-over-writes falls back to the (mutable)
    /// frontier only for lists. Such a verdict is safe to settle early.
    fn committed_ok_is_final(&self, muts: &[Mutation]) -> bool {
        self.cfg.kind != DataKind::List && (muts.is_empty() || base_independent(muts))
    }

    fn re_evaluate(&mut self, rref: ReadRef, key: Key, anchor_ev: EventKey, committed_only: bool) {
        let Some(t) = self.txns.get(&rref.tid) else { return };
        if t.finalized {
            return; // verdict frozen (paper lines 40–41)
        }
        let ext = t.level.checks().ext;
        if committed_only && ext != ExtPredicate::Committed {
            return; // frontier readers beyond the window are unaffected
        }
        let r = &t.reads[rref.read_idx as usize];
        if r.settled {
            return;
        }
        let new_ok = self.read_ok(ext, key, anchor_ev, &r.muts_before, &r.observed);
        self.stats.reevaluations += 1;
        if new_ok != r.ok {
            let now_final = new_ok
                && ext == ExtPredicate::Committed
                && self.committed_ok_is_final(&r.muts_before);
            let rectified =
                if new_ok { r.wrong_since.map(|w| self.now_ms.saturating_sub(w)) } else { None };
            self.flips.record_flip(rref.tid, key, rectified);
            self.emit_event(|| CheckEvent::VerdictFlip {
                tid: rref.tid,
                key,
                rectified_after_ms: rectified,
            });
            let t = self.txns.get_mut(&rref.tid).expect("present above");
            let r = &mut t.reads[rref.read_idx as usize];
            r.ok = new_ok;
            r.wrong_since = if new_ok { None } else { Some(self.now_ms) };
            // A justified committed read is settled for good — later
            // publishes to this key can stop re-evaluating it.
            if now_final {
                r.settled = true;
            }
        }
    }

    /// Recompute a (list) writer's published snapshot for `key` when its
    /// base changed; cascades through the frontier if the value differs.
    fn recompute_writer(&mut self, wtid: TxnId, key: Key, anchor_ev: EventKey) {
        let Some(t) = self.txns.get(&wtid) else { return };
        if t.anchor_keys.contains(&key) {
            return; // published value folds over the anchored observation
        }
        let muts: Vec<Mutation> = t
            .txn
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Write { key: k, mutation } if *k == key => Some(*mutation),
                _ => None,
            })
            .collect();
        if muts.is_empty() || aion_types::base_independent(&muts) {
            return; // Put-rooted values never change with the base
        }
        let base = self.frontier_at(key, anchor_ev);
        let new_snap = expected_read(&base, &muts);
        let commit_ev = t.txn.commit_event();
        let current = t.write_set.iter().find(|(k, _)| *k == key).map(|(_, s)| s.clone());
        if current.as_ref() == Some(&new_snap) {
            return;
        }
        let t = self.txns.get_mut(&wtid).expect("present above");
        if let Some(entry) = t.write_set.iter_mut().find(|(k, _)| *k == key) {
            entry.1 = new_snap.clone();
        }
        let prev = self.frontier.insert(key, commit_ev, new_snap.clone());
        if self.has_committed_ext {
            // The cascade *revised* this published version: the old value
            // was never a committed observation, so the membership entry
            // moves with it.
            self.membership.record(key, commit_ev, &new_snap, prev.as_ref().or(current.as_ref()));
        }
        self.triggers.push_back((key, commit_ev));
    }

    /// Finalize the EXT verdicts of one transaction (paper `TIMEOUT`).
    fn finalize_txn(&mut self, tid: TxnId) {
        let Some(t) = self.txns.get(&tid) else { return };
        if t.finalized {
            return;
        }
        let anchor = t.anchor();
        let mut viols = Vec::new();
        for r in &t.reads {
            if !r.ok && !r.settled {
                let base = self.frontier_at(r.key, anchor);
                let expected = expected_read(&base, &r.muts_before);
                viols.push(Violation::Ext {
                    tid,
                    key: r.key,
                    op_index: r.op_index as usize,
                    expected,
                    observed: r.observed.clone(),
                });
            }
        }
        let n = viols.len() as u32;
        for v in viols {
            self.emit(v);
        }
        self.emit_event(|| CheckEvent::ExtFinalized { tid, violations: n });
        self.txns.get_mut(&tid).expect("present above").finalized = true;
        self.stats.finalized += 1;
    }

    // --- garbage collection --------------------------------------------------

    fn maybe_gc(&mut self) {
        let (threshold, target) = match self.cfg.gc {
            OnlineGcPolicy::None => return,
            OnlineGcPolicy::Checking { max_txns } => (max_txns, max_txns / 2),
            OnlineGcPolicy::Full { max_txns } => (max_txns, max_txns.saturating_sub(1)),
        };
        if self.txns.len() <= threshold {
            return;
        }
        self.spill_down_to(target);
    }

    /// Spill finalized transactions (oldest first) until at most `target`
    /// transactions remain resident, or no more can be safely spilled.
    fn spill_down_to(&mut self, target: usize) {
        // Safe horizon: nothing at or above the anchor of any live
        // (unfinalized) transaction may be spilled — its verdicts can still
        // change (paper: asynchrony may prevent recycling anything).
        let mut safe_horizon = EventKey::INFINITY;
        // aion-lint: allow(determinism) — commutative min-fold; visit
        // order cannot affect the horizon
        for t in self.txns.values() {
            if !t.finalized {
                safe_horizon = safe_horizon.min(t.anchor());
            }
        }
        let mut candidates: Vec<(EventKey, TxnId)> = self
            .txns
            .values()
            .filter(|t| t.finalized && t.txn.commit_event() < safe_horizon)
            .map(|t| (t.txn.commit_event(), t.txn.tid))
            .collect();
        candidates.sort_unstable();

        let excess = self.txns.len().saturating_sub(target);
        let spill_count = candidates.len().min(excess);
        if spill_count == 0 {
            return; // worst case: asynchrony blocks all recycling
        }
        let spilled: Vec<TxnId> = candidates[..spill_count].iter().map(|&(_, t)| t).collect();
        let mut max_spilled_cts = Timestamp::MIN;
        let mut min_spilled_cts = Timestamp::MAX;
        // Encode from borrowed state and only evict on success: a failed
        // write keeps every candidate resident (memory is simply not
        // reclaimed this pass) and surfaces as a typed event, never a
        // panic. The clone is dominated by the encoding work either way.
        let entries: Vec<SpillEntry> = spilled
            .iter()
            .map(|tid| {
                let t = self.txns.get(tid).expect("candidate is resident");
                max_spilled_cts = max_spilled_cts.max(t.txn.commit_ts);
                min_spilled_cts = min_spilled_cts.min(t.txn.commit_ts);
                SpillEntry { txn: t.txn.clone(), write_set: t.write_set.clone() }
            })
            .collect();
        let bytes = match self.spill.spill(&entries) {
            Ok((_, bytes)) => bytes,
            Err(e) => {
                self.stats.spill_errors += 1;
                self.emit_event(|| CheckEvent::SpillError {
                    op: aion_types::SpillOp::Write,
                    detail: e.to_string(),
                });
                return;
            }
        };
        for tid in &spilled {
            self.txns.remove(tid);
        }
        self.stats.gc_spills += 1;
        self.stats.spilled_txns += entries.len();
        self.stats.spill_bytes += bytes as u64;
        let (spilled, resident_after) = (entries.len(), self.txns.len());
        self.emit_event(|| CheckEvent::SpillPass { spilled, bytes: bytes as u64, resident_after });
        self.gc_horizon_ts =
            Some(self.gc_horizon_ts.map_or(max_spilled_cts, |h| h.max(max_spilled_cts)));
        // A reloaded-then-re-spilled transaction can land below the
        // reload floor; pull the floor back so a later straggler pass
        // fetches it again.
        self.reload_floor =
            self.reload_floor.min(Timestamp(min_spilled_cts.get().saturating_sub(1)));

        // Prune versioned state below the oldest event any retained
        // transaction can still anchor a query at.
        let mut prune_horizon = safe_horizon;
        // aion-lint: allow(determinism) — commutative min-fold; visit
        // order cannot affect the horizon
        for t in self.txns.values() {
            prune_horizon = prune_horizon.min(t.anchor());
        }
        // The frontier-exact levels only ever query the latest version
        // below an anchor, which `prune_below` keeps per key. RC's
        // membership predicate has no such base — *any* committed
        // version below the anchor can justify a read — but that
        // question is answered by the committed-membership summaries,
        // which survive this prune, so the frontier sheds its chains
        // under RC/mixed policies too.
        self.frontier.prune_below(prune_horizon);
        self.ongoing.prune_below(prune_horizon);
        self.readers.prune_below(prune_horizon);
        self.writers.prune_below(prune_horizon);
        // The summaries survive the prune, but shed the events that can
        // no longer change any membership answer (everything behind a
        // frozen per-value minimum), so they stay bounded by the live
        // window plus one entry per distinct (key, value) pair.
        if self.has_committed_ext {
            self.membership.compact_below(prune_horizon);
        }
    }

    /// Reload every spilled segment that could matter for an arrival whose
    /// anchor reaches at or below the GC horizon. Conservative: a read may
    /// need the latest version committed long before its anchor, so all
    /// segments up to `hi` are brought back.
    pub(crate) fn reload_below(&mut self, hi: Timestamp) {
        if hi <= self.reload_floor {
            return; // everything at or below `hi` is already resident
        }
        self.reload_scans += 1;
        let ids = self.spill.segments_overlapping(Timestamp::MIN, hi);
        let mut all_loaded = true;
        for id in ids {
            // A segment that fails to reload is skipped for this pass —
            // typed degradation (re-checks against it see less history)
            // instead of a panic. The segment stays marked unloaded, so
            // a later pass retries it.
            let entries = match self.spill.reload(id) {
                Ok(entries) => entries,
                Err(e) => {
                    self.stats.spill_errors += 1;
                    all_loaded = false;
                    self.emit_event(|| CheckEvent::SpillError {
                        op: aion_types::SpillOp::Reload,
                        detail: e.to_string(),
                    });
                    continue;
                }
            };
            for e in entries {
                let tid = e.txn.tid;
                if self.txns.contains_key(&tid) {
                    continue;
                }
                self.stats.reloaded_txns += 1;
                let commit_ev = e.txn.commit_event();
                for (key, snap) in &e.write_set {
                    // Re-inserting is safe: reloaded versions are at or
                    // below the retained per-key base, so no live reader's
                    // visible version changes (see DESIGN.md).
                    let prev = self.frontier.insert(*key, commit_ev, snap.clone());
                    if self.has_committed_ext {
                        // Idempotent: the summary already carries this
                        // version from when it was first published.
                        self.membership.record(*key, commit_ev, snap, prev.as_ref());
                    }
                }
                // The policy resolves deterministically, so the reloaded
                // transaction gets exactly the level it was checked at
                // (its declaration survives the spill codec).
                let level = self.cfg.levels.level_for(&e.txn);
                if self.track_overlaps {
                    let nc = level.checks().noconflict;
                    for (key, _) in &e.write_set {
                        // Conflicts among reloaded transactions were already
                        // reported before they were spilled.
                        self.ongoing.register(*key, tid, nc, e.txn.start_event(), commit_ev, true);
                    }
                }
                self.txns.insert(
                    tid,
                    OnlineTxn {
                        txn: e.txn,
                        level,
                        write_set: e.write_set,
                        reads: Vec::new(),
                        anchor_keys: Vec::new(),
                        finalized: true,
                    },
                );
            }
        }
        if all_loaded {
            // Every overlapping segment is now resident: later passes
            // bounded by `hi` have nothing to do. A failed segment keeps
            // the floor down so it is retried.
            self.reload_floor = self.reload_floor.max(hi);
        }
    }
}

impl Checker for OnlineChecker {
    fn name(&self) -> &'static str {
        self.checker_name()
    }

    fn feed(&mut self, txn: Transaction, now_ms: u64) -> Vec<CheckEvent> {
        self.receive(txn, now_ms)
    }

    fn tick(&mut self, now_ms: u64) -> Vec<CheckEvent> {
        OnlineChecker::tick(self, now_ms)
    }

    fn finish(self) -> Outcome {
        OnlineChecker::finish(self)
    }

    fn estimated_memory_bytes(&self) -> usize {
        OnlineChecker::estimated_memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{AxiomKind, TxnBuilder, Value};

    fn checker() -> OnlineChecker {
        OnlineChecker::new_si(DataKind::Kv)
    }

    fn t(tid: u64, sid: u32, sno: u32, s: u64, c: u64) -> TxnBuilder {
        TxnBuilder::new(tid).session(sid, sno).interval(s, c)
    }

    #[test]
    fn in_order_valid_history_passes() {
        let mut a = checker();
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).build(), 0);
        a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(5)).build(), 1);
        let out = a.finish();
        assert!(out.is_ok(), "{}", out.report);
        assert_eq!(out.stats.received, 2);
        assert_eq!(out.stats.finalized, 2);
    }

    #[test]
    fn figure2_out_of_order_clears_false_ext_and_finds_conflict() {
        // Paper Example 5: T1..T4 arrive, then the delayed T5.
        let x = Key(1);
        let y = Key(2);
        let mut a = checker();
        a.receive(t(1, 0, 0, 1, 2).put(x, Value(1)).build(), 0);
        a.receive(t(2, 1, 0, 3, 5).put(x, Value(2)).build(), 0);
        a.receive(t(3, 2, 0, 6, 9).read(x, Value(2)).put(y, Value(2)).build(), 0);
        a.receive(t(4, 3, 0, 8, 10).read(y, Value(1)).build(), 0);
        // At this point T4's read of y=1 is tentatively wrong (no writer of
        // value 1 known), but nothing is reported yet.
        assert_eq!(a.report().count(AxiomKind::Ext), 0);
        // T5 arrives late: justifies T4's read, conflicts with T3 on y.
        a.receive(t(5, 4, 0, 4, 7).read(x, Value(1)).put(y, Value(1)).build(), 100);
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Ext), 0, "{}", out.report);
        assert_eq!(out.report.count(AxiomKind::NoConflict), 1, "{}", out.report);
        assert_eq!(
            out.report.violations.iter().find(|v| v.kind() == AxiomKind::NoConflict),
            Some(&Violation::NoConflict { key: y, t1: TxnId(5), t2: TxnId(3) })
        );
        // T4 flip-flopped: wrong on arrival, rectified by T5.
        assert!(out.flips.total_flips >= 1);
    }

    /// Regression: GC must not prune version-chain members that RC's
    /// membership predicate still needs. The stale version `v=1` is
    /// committed long before the GC horizon; an RC reader arriving
    /// later may legally observe it.
    #[test]
    fn rc_membership_survives_gc_pruning() {
        let mut a = OnlineChecker::builder()
            .level(IsolationLevel::ReadCommitted)
            .ext_timeout_ms(10)
            .gc(OnlineGcPolicy::Checking { max_txns: 8 })
            .build()
            .unwrap();
        // 40 sequential writers of one key; ticks finalize and GC spills.
        for i in 1..=40u64 {
            let txn = t(i, 0, (i - 1) as u32, i * 10, i * 10 + 5).put(Key(1), Value(i)).build();
            a.receive(txn, i * 100);
            a.tick(i * 100);
        }
        assert!(a.stats().spilled_txns > 0, "GC must have spilled");
        // An RC reader anchored at the end of the stream observing the
        // *first* version: stale but committed — RC must accept, which
        // requires the whole version chain to still be queryable.
        a.receive(t(1000, 1, 0, 900, 901).read(Key(1), Value(1)).build(), 5000);
        let out = a.finish();
        assert!(out.is_ok(), "stale committed read is RC-legal: {}", out.report);
    }

    /// Regression: deleting the `has_committed_ext` GC latch must leave
    /// RC streams with *bounded* resident memory. Pre-fix, the latch
    /// exempted the frontier from pruning whenever committed-predicate
    /// readers were possible, so a long RC stream grew without bound;
    /// now the frontier prunes and the compacted membership summaries
    /// answer the stale-read question.
    #[test]
    fn rc_long_stream_memory_stays_bounded_under_gc() {
        let dir = std::env::temp_dir().join(format!("aion-rc-bounded-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = OnlineChecker::builder()
            .level(IsolationLevel::ReadCommitted)
            .ext_timeout_ms(10)
            .gc(OnlineGcPolicy::Checking { max_txns: 32 })
            .spill_path(dir.join("spill.bin"))
            .build()
            .unwrap();
        let run = |a: &mut OnlineChecker, from: u64, to: u64| {
            for i in from..to {
                // A bounded (key, value) working set: the summary's
                // steady state is what the stream revisits, not its
                // length.
                let txn = t(i + 1, 0, i as u32, i * 10 + 1, i * 10 + 5)
                    .put(Key(i % 4), Value(i % 8))
                    .build();
                a.receive(txn, i * 100);
                a.tick(i * 100);
            }
        };
        run(&mut a, 0, 1_000);
        let mid = a.estimated_memory_bytes();
        run(&mut a, 1_000, 5_000);
        let end = a.estimated_memory_bytes();
        assert!(a.stats().spilled_txns > 0, "GC must have spilled");
        // 5x the stream must not approach 5x the resident bytes. (The
        // pre-fix latch kept every published version resident, scaling
        // linearly; the factor-3 bound leaves room for spill-segment
        // metadata, which grows by a few dozen bytes per pass.)
        assert!(end <= 3 * mid, "RC resident state must stay bounded: {mid} -> {end} bytes");
        assert!(
            a.membership.len() < 300,
            "membership summaries must compact under GC, got {} versions",
            a.membership.len()
        );
        let out = a.finish();
        assert!(out.is_ok(), "a clean RC stream must still pass: {}", out.report);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: `reload_below` used to rescan every spill segment
    /// from `Timestamp::MIN` on *every* deep-straggler arrival. The
    /// loaded watermark must make repeated passes at or below an
    /// already-loaded bound free.
    #[test]
    fn straggler_reload_passes_stop_rescanning() {
        let mut a = OnlineChecker::builder()
            .level(IsolationLevel::ReadCommitted)
            .ext_timeout_ms(10)
            .gc(OnlineGcPolicy::Checking { max_txns: 8 })
            .build()
            .unwrap();
        for i in 1..=40u64 {
            let txn = t(i, 0, (i - 1) as u32, i * 10 + 1, i * 10 + 5).put(Key(1), Value(i)).build();
            a.receive(txn, i * 100);
            a.tick(i * 100);
        }
        assert!(a.stats().spilled_txns > 0, "GC must have spilled");
        assert!(
            a.gc_horizon_ts.is_some_and(|h| h >= Timestamp(5)),
            "the stragglers below must reach under the horizon ({:?})",
            a.gc_horizon_ts
        );
        // First deep straggler: one reload pass. (It anchors before the
        // first commit at ts 15, so the initial value is all it can
        // legally read.)
        a.receive(t(1001, 1, 0, 4, 5).read(Key(1), Value(0)).build(), 5000);
        let after_first = a.reload_scans;
        assert!(after_first >= 1, "the deep straggler must trigger a reload pass");
        // A second straggler at or below the loaded watermark: no new
        // scan — the floor remembers what is already resident.
        a.receive(t(1002, 2, 0, 2, 3).read(Key(1), Value(0)).build(), 5001);
        assert_eq!(a.reload_scans, after_first, "repeated passes must not rescan");
        let out = a.finish();
        assert!(out.is_ok(), "stale committed reads are RC-legal: {}", out.report);
    }

    /// Regression: an overlapping writer pair whose levels permit the
    /// overlap must not trip NOCONFLICT even when the first partner has
    /// been spilled out of resident memory — the partner's level
    /// travels inside the overlap index, not via a resident-transaction
    /// lookup (which would presume SI).
    #[test]
    fn spilled_overlap_partners_keep_their_level() {
        let feed = |partner_level: IsolationLevel| {
            let mut a = OnlineChecker::builder()
                .levels(LevelPolicy::per_txn(IsolationLevel::Si))
                .ext_timeout_ms(10)
                .gc(OnlineGcPolicy::Checking { max_txns: 4 })
                .build()
                .unwrap();
            // A long-interval reader whose low start anchor pins the
            // prune horizon (so the spilled writer's overlap interval
            // survives pruning) while its huge commit keeps it off the
            // oldest-commit-first spill list; the tick finalizes it so
            // it never blocks spilling.
            a.receive(
                t(50, 0, 0, 5, 5000).read(Key(9), Value(0)).level(IsolationLevel::Si).build(),
                0,
            );
            a.tick(100);
            // The RA-declared writer that will be spilled.
            a.receive(
                t(1, 1, 0, 10, 30).put(Key(1), Value(1)).level(IsolationLevel::ReadAtomic).build(),
                100,
            );
            // Fillers on disjoint keys push the resident count over the
            // GC threshold.
            for i in 2..=9u64 {
                let txn = t(i, i as u32, 0, i * 100, i * 100 + 1)
                    .put(Key(i + 100), Value(i))
                    .level(IsolationLevel::ReadAtomic)
                    .build();
                a.receive(txn, i * 100);
                a.tick(i * 100);
            }
            assert!(a.stats().spilled_txns > 0, "GC must have spilled");
            assert!(!a.txns.contains_key(&TxnId(1)), "partner must be non-resident");
            // A second writer of the same key overlapping [10, 30]. The
            // RC variant anchors at its commit (above the GC horizon),
            // so no straggler reload brings the partner back.
            a.receive(
                t(99, 20, 0, 20, 2000).put(Key(1), Value(99)).level(partner_level).build(),
                2000,
            );
            a.finish()
        };
        let rc = feed(IsolationLevel::ReadCommitted);
        assert_eq!(
            rc.report.count(AxiomKind::NoConflict),
            0,
            "an RA/RC overlap is legal even with the partner spilled: {}",
            rc.report
        );
        let si = feed(IsolationLevel::Si);
        assert_eq!(
            si.report.count(AxiomKind::NoConflict),
            1,
            "an SI member still binds the pair: {}",
            si.report
        );
    }

    #[test]
    fn ext_violation_reported_after_timeout() {
        let mut a = checker();
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).build(), 0);
        a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(9)).build(), 0);
        // Before the timeout nothing is reported.
        a.tick(4999);
        assert_eq!(a.report().count(AxiomKind::Ext), 0);
        a.tick(5001);
        assert_eq!(a.report().count(AxiomKind::Ext), 1);
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "no double report: {}", out.report);
    }

    #[test]
    fn late_arrival_after_timeout_does_not_unreport() {
        let mut a = checker();
        a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(5)).build(), 0);
        a.tick(6000); // finalized: EXT violation reported
        assert_eq!(a.report().count(AxiomKind::Ext), 1);
        // The justifying writer arrives far too late; verdict stays.
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).build(), 7000);
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Ext), 1);
    }

    #[test]
    fn int_violation_reported_immediately() {
        let mut a = checker();
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).read(Key(1), Value(6)).build(), 0);
        assert_eq!(a.report().count(AxiomKind::Int), 1, "INT is stable, no waiting");
    }

    #[test]
    fn session_violation_detected_online() {
        let mut a = checker();
        a.receive(t(1, 0, 0, 1, 10).put(Key(1), Value(1)).build(), 0);
        a.receive(t(2, 0, 1, 5, 12).build(), 0); // starts before predecessor commits
        assert_eq!(a.report().count(AxiomKind::Session), 1);
    }

    #[test]
    fn ser_mode_checks_commit_order_visibility() {
        let mut a = OnlineChecker::new_ser(DataKind::Kv);
        // Overlapping under SI but reads the pre-commit value: an EXT
        // violation under SER.
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(1)).build(), 0);
        a.receive(t(2, 1, 0, 3, 6).put(Key(1), Value(2)).build(), 0);
        a.receive(t(3, 2, 0, 4, 7).read(Key(1), Value(1)).build(), 0);
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "{}", out.report);
        assert_eq!(out.report.count(AxiomKind::NoConflict), 0, "SER skips NOCONFLICT");
    }

    #[test]
    fn ser_mode_out_of_order_justification() {
        let mut a = OnlineChecker::new_ser(DataKind::Kv);
        // Reader arrives before the writer it read from (commit order:
        // writer at 2, reader at 4).
        a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(5)).build(), 0);
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).build(), 10);
        let out = a.finish();
        assert!(out.is_ok(), "{}", out.report);
        assert!(out.flips.total_flips >= 1, "verdict must have flipped");
    }

    #[test]
    fn duplicate_tid_and_timestamp_reported() {
        let mut a = checker();
        a.receive(t(1, 0, 0, 1, 2).build(), 0);
        a.receive(t(1, 1, 0, 3, 4).build(), 0);
        assert!(a.report().violations.iter().any(|v| matches!(v, Violation::DuplicateTid { .. })));
        a.receive(t(3, 2, 0, 2, 5).build(), 0); // start ts collides with t1's commit
        assert!(a
            .report()
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateTimestamp { ts: Timestamp(2), .. })));
    }

    #[test]
    fn eq1_malformed_rejected() {
        let mut a = checker();
        a.receive(t(1, 0, 0, 9, 3).put(Key(1), Value(1)).build(), 0);
        assert_eq!(a.report().count(AxiomKind::Integrity), 1);
        // Later writers on the same key are unaffected.
        a.receive(t(2, 1, 0, 10, 11).put(Key(1), Value(2)).build(), 0);
        a.receive(t(3, 2, 0, 12, 13).read(Key(1), Value(2)).build(), 0);
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::NoConflict), 0);
        assert_eq!(out.report.count(AxiomKind::Ext), 0, "{}", out.report);
    }

    #[test]
    fn read_only_txn_same_start_commit() {
        let mut a = checker();
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(1)).build(), 0);
        a.receive(t(2, 1, 0, 5, 5).read(Key(1), Value(1)).build(), 0);
        assert!(a.finish().is_ok());
    }

    #[test]
    fn list_out_of_order_append_cascade() {
        // Writer W2 appends on top of W1, but W1 arrives later: W2's
        // published list must be recomputed and the reader re-justified.
        let k = Key(1);
        let mut a =
            OnlineChecker::new(AionConfig { kind: DataKind::List, ..AionConfig::default() });
        // Arrive out of order: W2 (interval [3,4]) first, then reader,
        // then W1 ([1,2]).
        a.receive(t(2, 1, 0, 3, 4).append(k, Value(20)).build(), 0);
        a.receive(t(3, 2, 0, 5, 6).read_list(k, vec![Value(10), Value(20)]).build(), 0);
        a.receive(t(1, 0, 0, 1, 2).append(k, Value(10)).build(), 0);
        let out = a.finish();
        assert!(out.is_ok(), "cascade should rejustify the reader: {}", out.report);
    }

    #[test]
    fn gc_spills_and_straggler_reloads() {
        let mut a = OnlineChecker::new(AionConfig {
            kind: DataKind::Kv,
            ext_timeout_ms: 10,
            gc: OnlineGcPolicy::Checking { max_txns: 8 },
            ..AionConfig::default()
        });
        // Feed 40 sequential writers with increasing virtual time so the
        // timeouts fire and GC can spill.
        for i in 1..=40u64 {
            let txn = t(i, 0, (i - 1) as u32, i * 10, i * 10 + 5)
                .put(Key(i % 4), Value(i))
                .read(Key(i % 4), Value(i))
                .build();
            a.receive(txn, i * 100);
            a.tick(i * 100);
        }
        assert!(a.stats().spilled_txns > 0, "GC must have spilled");
        assert!(a.resident_txns() <= 12);
        // A deep straggler overlapping spilled territory: a reader whose
        // snapshot is ancient. k=1 last written by txn 37 at ts 375; a read
        // at ts 56 must see txn 5's value (w(k1)=5 committed at ts 55).
        a.receive(
            TxnBuilder::new(1000).session(1, 0).interval(56, 57).read(Key(1), Value(5)).build(),
            5000,
        );
        assert!(a.stats().reloaded_txns > 0, "straggler must trigger reload");
        let out = a.finish();
        assert!(out.is_ok(), "{}", out.report);
    }

    #[test]
    fn gc_cannot_spill_while_everything_live() {
        let mut a = OnlineChecker::new(AionConfig {
            kind: DataKind::Kv,
            gc: OnlineGcPolicy::Checking { max_txns: 4 },
            ..AionConfig::default()
        });
        // No ticks: nothing finalizes, so nothing may be spilled (the
        // paper's worst case).
        for i in 1..=10u64 {
            a.receive(t(i, i as u32 - 1, 0, i * 10, i * 10 + 5).read(Key(1), Value(0)).build(), 0);
        }
        assert_eq!(a.stats().spilled_txns, 0);
        assert_eq!(a.resident_txns(), 10);
    }

    #[test]
    fn flip_details_track_wrong_then_right() {
        let mut a = OnlineChecker::new(AionConfig {
            kind: DataKind::Kv,
            track_flip_details: true,
            ..AionConfig::default()
        });
        a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(5)).build(), 0);
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).build(), 7);
        let out = a.finish();
        assert!(out.is_ok());
        assert_eq!(out.flips.pairs_with_flips, 1);
        assert_eq!(out.flips.txns_with_flips, 1);
        assert_eq!(out.flips.rectify_ms, vec![7]);
    }

    #[test]
    fn events_stream_incrementally() {
        let mut a = checker();
        // A stable INT violation is emitted as an event at arrival.
        let evs =
            a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).read(Key(1), Value(6)).build(), 0);
        assert!(
            evs.iter().any(|e| matches!(e, CheckEvent::Violation(Violation::Int { .. }))),
            "{evs:?}"
        );
        // A tentatively-wrong read flips at arrival...
        let evs = a.receive(t(2, 1, 0, 3, 4).read(Key(2), Value(7)).build(), 0);
        assert!(evs.iter().all(|e| !e.is_violation()), "EXT must stay tentative: {evs:?}");
        // ...and flips back when the justifying writer shows up late.
        let evs = a.receive(t(3, 2, 0, 1, 2).put(Key(2), Value(7)).build(), 9);
        assert!(
            evs.iter().any(|e| matches!(
                e,
                CheckEvent::VerdictFlip { tid: TxnId(2), rectified_after_ms: Some(9), .. }
            )),
            "{evs:?}"
        );
        // The timeout finalizes t2 with zero violations.
        let evs = a.tick(10_000);
        assert!(
            evs.contains(&CheckEvent::ExtFinalized { tid: TxnId(2), violations: 0 }),
            "{evs:?}"
        );
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Int), 1);
        assert_eq!(out.report.count(AxiomKind::Ext), 0);
    }

    #[test]
    fn ext_violation_event_carries_finalization() {
        let mut a = checker();
        a.receive(t(1, 0, 0, 3, 4).read(Key(1), Value(9)).build(), 0);
        let evs = a.tick(6_000);
        let viols = evs.iter().filter(|e| e.is_violation()).count();
        assert_eq!(viols, 1, "{evs:?}");
        assert!(evs.contains(&CheckEvent::ExtFinalized { tid: TxnId(1), violations: 1 }));
    }

    #[test]
    fn spill_pass_event_emitted_under_gc() {
        let mut a = OnlineChecker::builder()
            .ext_timeout_ms(10)
            .gc(OnlineGcPolicy::Checking { max_txns: 8 })
            .build()
            .unwrap();
        let mut saw_spill = false;
        for i in 1..=40u64 {
            let txn = t(i, 0, (i - 1) as u32, i * 10, i * 10 + 5).put(Key(i % 4), Value(i)).build();
            let mut evs = a.receive(txn, i * 100);
            evs.extend(a.tick(i * 100));
            saw_spill |= evs.iter().any(|e| matches!(e, CheckEvent::SpillPass { .. }));
        }
        assert!(saw_spill, "GC must announce spill passes");
    }

    #[test]
    fn events_off_keeps_verdicts_but_streams_nothing() {
        let mut a = OnlineChecker::builder().events(false).build().unwrap();
        let evs =
            a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).read(Key(1), Value(6)).build(), 0);
        assert!(evs.is_empty(), "events disabled: {evs:?}");
        assert!(a.tick(10_000).is_empty());
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Int), 1, "report is unaffected");
    }

    #[test]
    fn builder_roundtrips_config() {
        let cfg = AionConfig::builder()
            .kind(DataKind::List)
            .level(IsolationLevel::Ser)
            .ext_timeout_ms(123)
            .gc(OnlineGcPolicy::Full { max_txns: 7 })
            .track_flip_details(true)
            .naive_recheck(true)
            .config();
        assert_eq!(cfg.kind, DataKind::List);
        assert_eq!(cfg.uniform_level(), Some(IsolationLevel::Ser));
        assert_eq!(cfg.ext_timeout_ms, 123);
        assert_eq!(cfg.gc, OnlineGcPolicy::Full { max_txns: 7 });
        assert!(cfg.track_flip_details && cfg.naive_recheck);
        let ck = OnlineChecker::builder().level(IsolationLevel::Ser).build().unwrap();
        assert_eq!(ck.checker_name(), "aion-ser");
        assert_eq!(Checker::name(&ck), "aion-ser");
    }

    #[test]
    fn uncreatable_spill_file_is_a_typed_error_not_a_panic() {
        let bad = std::path::PathBuf::from("/nonexistent-dir-aion/spill.bin");
        let Err(err) = OnlineChecker::builder().spill_path(bad.clone()).build() else {
            panic!("opening a session with an uncreatable spill file must fail");
        };
        match &err {
            ConfigError::SpillFile { path, source } => {
                assert_eq!(path, &bad);
                assert_eq!(source.kind(), std::io::ErrorKind::NotFound);
            }
        }
        assert!(err.to_string().contains("spill file"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
        // The sharded constructor surfaces the same error (suffixed per
        // worker) instead of panicking a worker thread.
        let Err(err) = OnlineChecker::builder().spill_path(bad).shards(2).build_sharded() else {
            panic!("sharded sessions must surface the same error");
        };
        assert!(matches!(err, ConfigError::SpillFile { .. }));
    }

    #[test]
    fn memory_estimate_includes_spill_and_buffer_overhead() {
        let feed = |mut a: OnlineChecker| -> OnlineChecker {
            for i in 1..=40u64 {
                let txn =
                    t(i, 0, (i - 1) as u32, i * 10, i * 10 + 5).put(Key(i % 4), Value(i)).build();
                a.receive(txn, i * 100);
                a.tick(i * 100);
            }
            a
        };
        let gc = OnlineGcPolicy::Checking { max_txns: 8 };
        let a = feed(OnlineChecker::builder().ext_timeout_ms(10).gc(gc).build().unwrap());
        assert!(a.stats().spilled_txns > 0, "GC must have spilled");
        let spill = a.spill.buffered_bytes();
        assert!(
            spill >= a.stats().spill_bytes as usize,
            "the in-memory backend retains every spilled byte ({spill} vs {})",
            a.stats().spill_bytes
        );
        // Pin the accounting: the estimate is exactly state + spill store
        // + deadline/trigger/event buffers.
        let expected = a.state_bytes_estimate()
            + spill
            + a.deadlines.len() * std::mem::size_of::<Reverse<(u64, TxnId)>>()
            + a.triggers.len() * std::mem::size_of::<(Key, EventKey)>()
            + a.events.capacity() * std::mem::size_of::<CheckEvent>();
        assert_eq!(a.estimated_memory_bytes(), expected);
        assert!(
            a.estimated_memory_bytes() > a.state_bytes_estimate(),
            "spill overhead must be visible in the estimate"
        );

        // A disk-backed spill store pays only segment metadata: the same
        // feed must estimate less than the in-memory-spill twin.
        let dir = std::env::temp_dir().join(format!("aion-mem-est-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let b = feed(
            OnlineChecker::builder()
                .ext_timeout_ms(10)
                .gc(gc)
                .spill_path(dir.join("spill.bin"))
                .build()
                .unwrap(),
        );
        assert_eq!(b.stats().spilled_txns, a.stats().spilled_txns, "twin runs spill identically");
        assert!(
            b.spill.buffered_bytes() < spill,
            "disk-backed spilling must not count segment bytes as resident"
        );
        assert!(b.estimated_memory_bytes() < a.estimated_memory_bytes());
        drop(b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn conflict_with_late_arriving_earlier_committer_normalized() {
        // T3 [6,9] arrives first; T5 [4,7] second. Reporter must be T5
        // (smaller commit ts), matching CHRONOS.
        let y = Key(2);
        let mut a = checker();
        a.receive(t(3, 0, 0, 6, 9).put(y, Value(2)).build(), 0);
        a.receive(t(5, 1, 0, 4, 7).put(y, Value(1)).build(), 0);
        let out = a.finish();
        assert_eq!(
            out.report.violations,
            vec![Violation::NoConflict { key: y, t1: TxnId(5), t2: TxnId(3) }]
        );
    }
}
