//! Arrival simulation and online run driving.
//!
//! The paper's collectors dispatch transactions to AION in batches of 500;
//! the flip-flop study injects an artificial per-transaction delay drawn
//! from `N(µ, σ²)` within each batch (§VI-C). [`feed_plan`] reproduces
//! exactly that, deterministically from a seed, while preserving session
//! order (AION's input assumption). [`run_plan`] then drives a checker
//! through the plan, measuring wall-clock throughput per second (Fig. 12).

use aion_types::Stopwatch;
use aion_types::{
    CheckEvent, Checker, FxHashMap, History, Key, NormalSampler, Outcome, SessionId, SplitMix64,
    Transaction,
};
use std::collections::BTreeMap;
use std::time::Duration;

/// Arrival-plan configuration.
#[derive(Clone, Copy, Debug)]
pub struct FeedConfig {
    /// Transactions per dispatch batch (paper: 500).
    pub batch_size: usize,
    /// Virtual milliseconds between batch dispatches.
    pub batch_interval_ms: u64,
    /// Mean of the per-transaction delay distribution (ms).
    pub delay_mean_ms: f64,
    /// Standard deviation of the delay distribution (ms).
    pub delay_std_ms: f64,
    /// Seed for deterministic delays.
    pub seed: u64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            batch_size: 500,
            batch_interval_ms: 40,
            delay_mean_ms: 100.0,
            delay_std_ms: 10.0,
            seed: 42,
        }
    }
}

/// A planned arrival: `(virtual arrival time in ms, transaction)`.
pub type Arrival = (u64, Transaction);

/// Build the arrival plan for `history` under `cfg`: batch dispatch plus
/// normally distributed per-transaction delays, sorted by arrival time and
/// then repaired so that session order is preserved (a held-back
/// transaction inherits the arrival time of the predecessor that releases
/// it).
pub fn feed_plan(history: &History, cfg: &FeedConfig) -> Vec<Arrival> {
    let mut rng = SplitMix64::new(cfg.seed ^ 0xfeed);
    let mut normal = NormalSampler::new(cfg.delay_mean_ms, cfg.delay_std_ms);
    let mut arrivals: Vec<Arrival> = history
        .txns
        .iter()
        .enumerate()
        .map(|(i, txn)| {
            let dispatch = (i / cfg.batch_size.max(1)) as u64 * cfg.batch_interval_ms;
            let delay = normal.sample_non_negative(&mut rng) as u64;
            (dispatch + delay, txn.clone())
        })
        .collect();
    arrivals.sort_by_key(|(at, txn)| (*at, txn.tid));
    enforce_session_order(arrivals)
}

/// Emit arrivals in time order, holding back any transaction whose session
/// predecessor has not arrived yet.
fn enforce_session_order(arrivals: Vec<Arrival>) -> Vec<Arrival> {
    let mut next_sno: FxHashMap<SessionId, u32> = FxHashMap::default();
    let mut held: FxHashMap<SessionId, BTreeMap<u32, Arrival>> = FxHashMap::default();
    let mut out = Vec::with_capacity(arrivals.len());
    for (at, txn) in arrivals {
        let sid = txn.sid;
        let expected = next_sno.entry(sid).or_insert(0);
        if txn.sno == *expected {
            *expected += 1;
            out.push((at, txn));
            // Release any directly following held-back transactions.
            if let Some(waiting) = held.get_mut(&sid) {
                while let Some(entry) = waiting.remove(expected) {
                    *expected += 1;
                    out.push((at.max(entry.0), entry.1));
                }
            }
        } else {
            held.entry(sid).or_default().insert(txn.sno, (at, txn));
        }
    }
    // Anything still held had a gap in the input; emit in sno order,
    // sessions in sid order. (This used to drain `held` directly, which
    // leaked FxHashMap insertion-history order into the arrival plan.)
    let mut leftovers: Vec<(SessionId, BTreeMap<u32, Arrival>)> = held.into_iter().collect();
    leftovers.sort_unstable_by_key(|(sid, _)| *sid);
    for (_, waiting) in leftovers {
        for (_, arr) in waiting {
            out.push(arr);
        }
    }
    out
}

// ------------------------------------------------------------------ routing

/// Shard that owns `key` under `shards`-way partitioning.
///
/// Uses a Fibonacci multiply-and-fold so that both sequential workload
/// keys and packed composite keys (e.g. TPC-C) spread evenly. Every
/// per-key axiom (INT, EXT, NOCONFLICT) only relates operations on the
/// same key, so key partitioning is a sound unit of parallelism; see
/// `docs/architecture.md`.
#[inline]
pub fn shard_of(key: Key, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mixed = key.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
    (mixed % shards as u64) as usize
}

/// A transaction routed across `shards` key partitions by
/// [`route_txn`].
#[derive(Clone, Debug, PartialEq)]
pub enum RoutedTxn {
    /// Every operation lands on one shard: forward the transaction
    /// unchanged (no clone on this fast path).
    Single {
        /// Owning shard.
        shard: usize,
        /// The unmodified transaction.
        txn: Transaction,
    },
    /// Operations span shards: each touched shard receives the whole
    /// transaction and checks only the operations it owns (its
    /// *sub-footprint*). Shipping the full operation list keeps
    /// violation `op_index`es anchored to the original program order,
    /// so sharded reports are byte-identical to single-checker ones.
    Split {
        /// Touched shards, ascending.
        shards: Vec<usize>,
        /// The unmodified transaction (cloned once per extra shard).
        txn: Transaction,
    },
}

/// Partition `txn` by the key owners of its operations.
///
/// Per-key program order is all the checker's INT/EXT derivation
/// depends on (`muts_before`, anchored first reads, and published write
/// sets are computed per key), and each key's operations are checked by
/// exactly one shard. A transaction with no operations routes to the
/// shard owning `Key(tid)`, so empty transactions still count exactly
/// once.
pub fn route_txn(txn: Transaction, shards: usize) -> RoutedTxn {
    if shards <= 1 {
        return RoutedTxn::Single { shard: 0, txn };
    }
    let Some(first_op) = txn.ops.first() else {
        return RoutedTxn::Single { shard: shard_of(Key(txn.tid.0), shards), txn };
    };
    let first = shard_of(first_op.key(), shards);
    if txn.ops.iter().all(|op| shard_of(op.key(), shards) == first) {
        return RoutedTxn::Single { shard: first, txn };
    }
    let mut touched: Vec<usize> = txn.ops.iter().map(|op| shard_of(op.key(), shards)).collect();
    touched.sort_unstable();
    touched.dedup();
    RoutedTxn::Split { shards: touched, txn }
}

/// One event with the virtual arrival time at which it surfaced.
pub type TimedEvent = (u64, CheckEvent);

/// Result of driving a checker through an arrival plan.
#[derive(Debug)]
pub struct OnlineRunReport {
    /// The checking outcome (violations, stats, flip-flops).
    pub outcome: Outcome,
    /// Every [`CheckEvent`] the checker emitted, stamped with the
    /// virtual time of the `feed`/`tick` call that produced it — the
    /// per-event timeline of the session.
    pub timeline: Vec<TimedEvent>,
    /// Transactions processed per wall-clock second, in order.
    pub throughput: Vec<u32>,
    /// Total wall-clock processing time.
    pub wall: Duration,
    /// Transactions fed.
    pub processed: usize,
}

impl OnlineRunReport {
    /// Mean transactions per second over the whole run.
    pub fn mean_tps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.processed as f64 / self.wall.as_secs_f64()
    }

    /// Timeline events that committed a violation mid-stream.
    pub fn violation_events(&self) -> usize {
        self.timeline.iter().filter(|(_, e)| e.is_violation()).count()
    }

    /// Tentative-verdict flips observed mid-stream.
    pub fn flip_events(&self) -> usize {
        self.timeline.iter().filter(|(_, e)| matches!(e, CheckEvent::VerdictFlip { .. })).count()
    }

    /// EXT finalizations observed, including the end-of-run drain.
    pub fn finalization_events(&self) -> usize {
        self.timeline.iter().filter(|(_, e)| matches!(e, CheckEvent::ExtFinalized { .. })).count()
    }

    /// GC spill passes observed mid-stream.
    pub fn spill_events(&self) -> usize {
        self.timeline.iter().filter(|(_, e)| matches!(e, CheckEvent::SpillPass { .. })).count()
    }
}

/// Drive any [`Checker`] through `plan` as fast as possible (arrival
/// rate exceeding checking speed, as in the paper's throughput
/// experiments): virtual time advances with each arrival's timestamp,
/// wall-clock throughput is bucketed per second, and every emitted
/// event is collected into a timeline. Before `finish`, one final
/// `tick` at the end of time expires every outstanding EXT deadline,
/// so end-of-stream finalizations and their violations appear on the
/// timeline too (stamped with the last arrival time) instead of being
/// visible only in the terminal report.
pub fn run_plan<C: Checker>(mut checker: C, plan: &[Arrival]) -> OnlineRunReport {
    let start = Stopwatch::start();
    let mut throughput: Vec<u32> = Vec::new();
    let mut timeline: Vec<TimedEvent> = Vec::new();
    for (at, txn) in plan {
        timeline.extend(checker.tick(*at).into_iter().map(|e| (*at, e)));
        timeline.extend(checker.feed(txn.clone(), *at).into_iter().map(|e| (*at, e)));
        let sec = start.elapsed().as_secs() as usize;
        if throughput.len() <= sec {
            throughput.resize(sec + 1, 0);
        }
        if let Some(slot) = throughput.get_mut(sec) {
            *slot += 1;
        }
    }
    let end = plan.last().map(|(at, _)| *at).unwrap_or(0);
    timeline.extend(checker.tick(u64::MAX).into_iter().map(|e| (end, e)));
    let wall = start.elapsed();
    let outcome = checker.finish();
    OnlineRunReport { outcome, timeline, throughput, wall, processed: plan.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::OnlineChecker;
    use aion_types::{DataKind, Key, TxnBuilder, Value};

    fn history(n: u64) -> History {
        let mut h = History::new(DataKind::Kv);
        for i in 0..n {
            h.push(
                TxnBuilder::new(i + 1)
                    .session((i % 3) as u32, (i / 3) as u32)
                    .interval(100 + i * 10, 105 + i * 10)
                    .put(Key(i % 5), Value(i + 1))
                    .build(),
            );
        }
        h
    }

    #[test]
    fn plan_is_deterministic() {
        let h = history(50);
        let cfg = FeedConfig::default();
        assert_eq!(feed_plan(&h, &cfg), feed_plan(&h, &cfg));
    }

    #[test]
    fn plan_preserves_session_order() {
        let h = history(200);
        let cfg = FeedConfig {
            batch_size: 10,
            delay_mean_ms: 100.0,
            delay_std_ms: 80.0, // heavy reordering
            ..FeedConfig::default()
        };
        let plan = feed_plan(&h, &cfg);
        assert_eq!(plan.len(), 200);
        let mut next: FxHashMap<SessionId, u32> = FxHashMap::default();
        for (_, txn) in &plan {
            let e = next.entry(txn.sid).or_insert(0);
            assert_eq!(txn.sno, *e, "session order broken for {:?}", txn.tid);
            *e += 1;
        }
    }

    #[test]
    fn plan_reorders_across_sessions_under_high_variance() {
        let h = history(300);
        let cfg = FeedConfig { batch_size: 50, delay_std_ms: 50.0, ..FeedConfig::default() };
        let plan = feed_plan(&h, &cfg);
        let out_of_commit_order = plan.windows(2).any(|w| w[0].1.commit_ts > w[1].1.commit_ts);
        assert!(out_of_commit_order, "delays should reorder arrivals");
    }

    #[test]
    fn arrival_times_nondecreasing() {
        let h = history(100);
        let plan = feed_plan(&h, &FeedConfig::default());
        // Session-order repair may inherit times but never goes backwards
        // relative to... the original sort; just assert monotone overall.
        assert!(plan.windows(2).all(|w| w[0].0 <= w[1].0 || w[1].1.sno > 0));
    }

    #[test]
    fn run_plan_checks_everything() {
        let h = history(100);
        let plan = feed_plan(&h, &FeedConfig::default());
        let checker = OnlineChecker::new_si(DataKind::Kv);
        let r = run_plan(checker, &plan);
        assert_eq!(r.processed, 100);
        assert!(r.outcome.is_ok(), "{}", r.outcome.report);
        assert_eq!(r.outcome.stats.received, 100);
        assert_eq!(r.outcome.stats.finalized, 100);
        assert!(r.mean_tps() > 0.0);
        assert_eq!(r.throughput.iter().map(|&c| c as usize).sum::<usize>(), 100);
    }

    #[test]
    fn run_plan_collects_event_timeline() {
        // Valid history whose reads stay tentative until their timeout;
        // with a short EXT timeout and a long feed, the finalizations
        // land inside the run, not just at finish().
        let mut h = History::new(DataKind::Kv);
        h.push(TxnBuilder::new(1).session(0, 0).interval(10, 11).put(Key(1), Value(1)).build());
        let mut sno = [0u32; 4];
        for i in 2..=200u64 {
            let s = (i % 4) as usize;
            h.push(
                TxnBuilder::new(i)
                    .session(s as u32 + 1, sno[s])
                    .interval(i * 10, i * 10 + 5)
                    .read(Key(1), Value(1))
                    .build(),
            );
            sno[s] += 1;
        }
        let plan = feed_plan(
            &h,
            &FeedConfig { batch_size: 10, batch_interval_ms: 500, ..FeedConfig::default() },
        );
        let checker = OnlineChecker::builder().ext_timeout_ms(100).build().expect("open session");
        let r = run_plan(checker, &plan);
        assert!(r.outcome.is_ok(), "{}", r.outcome.report);
        assert!(
            r.finalization_events() > 0,
            "streaming finalizations expected, timeline: {} events",
            r.timeline.len()
        );
        assert_eq!(r.violation_events(), 0);
        // Timestamps on the timeline are the virtual feed times.
        assert!(r.timeline.iter().all(|(at, _)| *at <= plan.last().unwrap().0));
    }

    #[test]
    fn end_of_stream_violations_reach_the_timeline() {
        // The bad read's EXT deadline lies beyond the last arrival, so
        // no in-loop tick can fire it: the end-of-run drain must still
        // surface the violation as a timeline event, not only in the
        // terminal report.
        let mut h = History::new(DataKind::Kv);
        h.push(TxnBuilder::new(1).session(0, 0).interval(1, 2).read(Key(1), Value(9)).build());
        let plan: Vec<Arrival> = h.txns.iter().map(|t| (0u64, t.clone())).collect();
        let r = run_plan(OnlineChecker::new_si(DataKind::Kv), &plan);
        assert_eq!(r.outcome.report.len(), 1);
        assert_eq!(r.violation_events(), 1, "timeline must carry the drained violation");
        assert_eq!(r.finalization_events(), 1);
    }
}
