//! Arrival simulation and online run driving.
//!
//! The paper's collectors dispatch transactions to AION in batches of 500;
//! the flip-flop study injects an artificial per-transaction delay drawn
//! from `N(µ, σ²)` within each batch (§VI-C). [`feed_plan`] reproduces
//! exactly that, deterministically from a seed, while preserving session
//! order (AION's input assumption). [`run_plan`] then drives a checker
//! through the plan, measuring wall-clock throughput per second (Fig. 12).

use crate::checker::{AionOutcome, OnlineChecker};
use aion_types::{FxHashMap, History, NormalSampler, SessionId, SplitMix64, Transaction};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Arrival-plan configuration.
#[derive(Clone, Copy, Debug)]
pub struct FeedConfig {
    /// Transactions per dispatch batch (paper: 500).
    pub batch_size: usize,
    /// Virtual milliseconds between batch dispatches.
    pub batch_interval_ms: u64,
    /// Mean of the per-transaction delay distribution (ms).
    pub delay_mean_ms: f64,
    /// Standard deviation of the delay distribution (ms).
    pub delay_std_ms: f64,
    /// Seed for deterministic delays.
    pub seed: u64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            batch_size: 500,
            batch_interval_ms: 40,
            delay_mean_ms: 100.0,
            delay_std_ms: 10.0,
            seed: 42,
        }
    }
}

/// A planned arrival: `(virtual arrival time in ms, transaction)`.
pub type Arrival = (u64, Transaction);

/// Build the arrival plan for `history` under `cfg`: batch dispatch plus
/// normally distributed per-transaction delays, sorted by arrival time and
/// then repaired so that session order is preserved (a held-back
/// transaction inherits the arrival time of the predecessor that releases
/// it).
pub fn feed_plan(history: &History, cfg: &FeedConfig) -> Vec<Arrival> {
    let mut rng = SplitMix64::new(cfg.seed ^ 0xfeed);
    let mut normal = NormalSampler::new(cfg.delay_mean_ms, cfg.delay_std_ms);
    let mut arrivals: Vec<Arrival> = history
        .txns
        .iter()
        .enumerate()
        .map(|(i, txn)| {
            let dispatch = (i / cfg.batch_size.max(1)) as u64 * cfg.batch_interval_ms;
            let delay = normal.sample_non_negative(&mut rng) as u64;
            (dispatch + delay, txn.clone())
        })
        .collect();
    arrivals.sort_by_key(|(at, txn)| (*at, txn.tid));
    enforce_session_order(arrivals)
}

/// Emit arrivals in time order, holding back any transaction whose session
/// predecessor has not arrived yet.
fn enforce_session_order(arrivals: Vec<Arrival>) -> Vec<Arrival> {
    let mut next_sno: FxHashMap<SessionId, u32> = FxHashMap::default();
    let mut held: FxHashMap<SessionId, BTreeMap<u32, Arrival>> = FxHashMap::default();
    let mut out = Vec::with_capacity(arrivals.len());
    for (at, txn) in arrivals {
        let sid = txn.sid;
        let expected = next_sno.entry(sid).or_insert(0);
        if txn.sno == *expected {
            *expected += 1;
            out.push((at, txn));
            // Release any directly following held-back transactions.
            if let Some(waiting) = held.get_mut(&sid) {
                let expected = next_sno.get_mut(&sid).expect("just inserted");
                while let Some(entry) = waiting.remove(expected) {
                    *expected += 1;
                    out.push((at.max(entry.0), entry.1));
                }
            }
        } else {
            held.entry(sid).or_default().insert(txn.sno, (at, txn));
        }
    }
    // Anything still held had a gap in the input; emit in sno order.
    for (_, waiting) in held {
        for (_, arr) in waiting {
            out.push(arr);
        }
    }
    out
}

/// Result of driving a checker through an arrival plan.
#[derive(Debug)]
pub struct OnlineRunReport {
    /// The checking outcome (violations, stats, flip-flops).
    pub outcome: AionOutcome,
    /// Transactions processed per wall-clock second, in order.
    pub throughput: Vec<u32>,
    /// Total wall-clock processing time.
    pub wall: Duration,
    /// Transactions fed.
    pub processed: usize,
}

impl OnlineRunReport {
    /// Mean transactions per second over the whole run.
    pub fn mean_tps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.processed as f64 / self.wall.as_secs_f64()
    }
}

/// Drive `checker` through `plan` as fast as possible (arrival rate
/// exceeding checking speed, as in the paper's throughput experiments):
/// virtual time advances with each arrival's timestamp, wall-clock
/// throughput is bucketed per second, and all pending verdicts are drained
/// at the end.
pub fn run_plan(mut checker: OnlineChecker, plan: &[Arrival]) -> OnlineRunReport {
    let start = Instant::now();
    let mut throughput: Vec<u32> = Vec::new();
    for (at, txn) in plan {
        checker.tick(*at);
        checker.receive(txn.clone(), *at);
        let sec = start.elapsed().as_secs() as usize;
        if throughput.len() <= sec {
            throughput.resize(sec + 1, 0);
        }
        throughput[sec] += 1;
    }
    let wall = start.elapsed();
    let outcome = checker.finish();
    OnlineRunReport { outcome, throughput, wall, processed: plan.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{DataKind, Key, TxnBuilder, Value};

    fn history(n: u64) -> History {
        let mut h = History::new(DataKind::Kv);
        for i in 0..n {
            h.push(
                TxnBuilder::new(i + 1)
                    .session((i % 3) as u32, (i / 3) as u32)
                    .interval(100 + i * 10, 105 + i * 10)
                    .put(Key(i % 5), Value(i + 1))
                    .build(),
            );
        }
        h
    }

    #[test]
    fn plan_is_deterministic() {
        let h = history(50);
        let cfg = FeedConfig::default();
        assert_eq!(feed_plan(&h, &cfg), feed_plan(&h, &cfg));
    }

    #[test]
    fn plan_preserves_session_order() {
        let h = history(200);
        let cfg = FeedConfig {
            batch_size: 10,
            delay_mean_ms: 100.0,
            delay_std_ms: 80.0, // heavy reordering
            ..FeedConfig::default()
        };
        let plan = feed_plan(&h, &cfg);
        assert_eq!(plan.len(), 200);
        let mut next: FxHashMap<SessionId, u32> = FxHashMap::default();
        for (_, txn) in &plan {
            let e = next.entry(txn.sid).or_insert(0);
            assert_eq!(txn.sno, *e, "session order broken for {:?}", txn.tid);
            *e += 1;
        }
    }

    #[test]
    fn plan_reorders_across_sessions_under_high_variance() {
        let h = history(300);
        let cfg = FeedConfig {
            batch_size: 50,
            delay_std_ms: 50.0,
            ..FeedConfig::default()
        };
        let plan = feed_plan(&h, &cfg);
        let out_of_commit_order = plan
            .windows(2)
            .any(|w| w[0].1.commit_ts > w[1].1.commit_ts);
        assert!(out_of_commit_order, "delays should reorder arrivals");
    }

    #[test]
    fn arrival_times_nondecreasing() {
        let h = history(100);
        let plan = feed_plan(&h, &FeedConfig::default());
        // Session-order repair may inherit times but never goes backwards
        // relative to... the original sort; just assert monotone overall.
        assert!(plan.windows(2).all(|w| w[0].0 <= w[1].0 || w[1].1.sno > 0));
    }

    #[test]
    fn run_plan_checks_everything() {
        let h = history(100);
        let plan = feed_plan(&h, &FeedConfig::default());
        let checker = OnlineChecker::new_si(DataKind::Kv);
        let r = run_plan(checker, &plan);
        assert_eq!(r.processed, 100);
        assert!(r.outcome.is_ok(), "{}", r.outcome.report);
        assert_eq!(r.outcome.stats.received, 100);
        assert_eq!(r.outcome.stats.finalized, 100);
        assert!(r.mean_tps() > 0.0);
        assert_eq!(r.throughput.iter().map(|&c| c as usize).sum::<usize>(), 100);
    }
}
