//! Sharded parallel online checking: N shard workers, one coordinator.
//!
//! [`ShardedChecker`] scales [`OnlineChecker`] beyond one core by
//! partitioning the key space across `N` worker threads (one
//! single-threaded `OnlineChecker` each, fed over crossbeam channels)
//! while a coordinator owns everything that is *not* per-key:
//!
//! * **Routing** — each arrival is routed by [`crate::feed::shard_of`];
//!   a transaction touching several shards is split by
//!   [`crate::feed::route_txn`] into per-shard *sub-footprints* (same
//!   tid/sid/sno/timestamps, only the owned keys' operations).
//! * **Global checks** — duplicate tid/timestamp detection, SESSION,
//!   and Eq. (1) well-formedness need the whole transaction and the
//!   whole session stream, so the coordinator performs them exactly
//!   once, byte-for-byte like `OnlineChecker::receive`; workers run in
//!   *coordinated* mode and skip them.
//! * **Verdict-state ownership** — per-key state (frontier versions,
//!   readers/writers indexes, NOCONFLICT intervals, tentative EXT
//!   verdicts) lives entirely inside the owning shard. This is sound
//!   because every INT/EXT/NOCONFLICT axiom instance relates operations
//!   on a single key; see `docs/isolation-models.md`.
//! * **Event sequencing** — worker [`CheckEvent`]s are pumped onto one
//!   outbound stream (per-shard order preserved, shards interleaved by
//!   reply arrival). `ExtFinalized` events of a split transaction are
//!   *merged*: the coordinator counts the read-bearing sub-footprints
//!   at route time, holds per-shard finalizations until the last one
//!   lands, and emits a single event with the summed violation count —
//!   exactly one `ExtFinalized` per pending transaction, as in the
//!   single checker.
//! * **Outcome merging** — `finish` joins the workers and folds their
//!   reports, [`CheckerStats`] and [`FlipSummary`]s (in shard order,
//!   deterministically) into one uniform [`Outcome`], fixing up
//!   `received`/`finalized` to whole-transaction counts.
//!
//! Workers catch their virtual clock up before processing each arrival,
//! so EXT finalization *verdicts* are identical to the single checker's
//! regardless of when `tick`s are forwarded; the coordinator therefore
//! rate-limits clock broadcasts to
//! [`aion_types::ShardConfig::tick_broadcast_ms`] and only pays the fan-out when
//! the clock meaningfully advances. `tick(u64::MAX)` (the end-of-stream
//! drain used by [`crate::feed::run_plan`]) is a synchronous barrier:
//! it flushes every worker so end-of-stream finalizations surface as
//! events before `finish`.
//!
//! ```
//! use aion_online::OnlineChecker;
//! use aion_types::{Checker, DataKind, IsolationLevel, Key, TxnBuilder, Value};
//!
//! let mut checker =
//!     OnlineChecker::builder().level(IsolationLevel::Si).shards(4).build_sharded().expect("config");
//! checker.feed(
//!     TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(7)).build(), 0);
//! checker.feed(
//!     TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(7)).build(), 1);
//! let outcome = checker.finish();
//! assert!(outcome.is_ok());
//! assert_eq!(outcome.txns, 2);
//! ```

use crate::checker::{
    aion_level_name, AionConfig, ConfigError, GlobalChecks, OnlineChecker, OnlineGcPolicy,
};
use crate::feed::{route_txn, RoutedTxn};
use aion_types::{
    CheckEvent, CheckReport, Checker, CheckerStats, FlipSummary, FxHashMap, Outcome, Transaction,
    TxnId, Violation,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Commands the coordinator sends to a shard worker.
enum ShardCmd {
    /// Process one (sub-)transaction at virtual time `now_ms` (the
    /// worker ticks its clock up to `now_ms` first). Shared via `Arc`
    /// so a split transaction is *not* deep-cloned on the coordinator's
    /// critical path — the last worker to unwrap it takes ownership,
    /// the others clone in parallel on their own threads.
    Feed { txn: Arc<Transaction>, now_ms: u64 },
    /// Advance the worker's virtual clock, firing EXT timeouts.
    Tick { now_ms: u64 },
    /// Acknowledge once every prior command has been processed.
    Flush,
    /// Finish the worker's checker and reply with its outcome.
    Finish,
}

/// Replies flowing back from workers (per-worker FIFO order).
enum ShardReply {
    /// Events produced by a `Feed`, plus whether the fed part still
    /// holds tentative EXT verdicts on this shard (an `ExtFinalized`
    /// follows from this worker eventually iff `pending`). Only sent
    /// when events are on.
    Fed { tid: TxnId, pending: bool, events: Vec<CheckEvent> },
    /// Events produced by a `Tick`. Only sent when events are on.
    Ticked { events: Vec<CheckEvent> },
    /// Barrier acknowledgement for `Flush`.
    Flushed,
    /// Terminal outcome for `Finish` (boxed: it dwarfs the streaming
    /// variants and is sent once per worker).
    Done { shard: usize, outcome: Box<Outcome> },
}

/// Merge state for one read-bearing transaction, driven entirely by
/// worker replies: the coordinator only knows how many `Fed` replies
/// to expect (one per routed part — pure routing knowledge); which
/// parts hold tentative reads is reported by the workers themselves,
/// so there is no cross-thread read-ownership predicate to keep in
/// agreement.
struct PendingFinalize {
    /// Routed parts whose `Fed` reply has not arrived yet.
    awaiting_fed: u32,
    /// Parts that replied `pending` and have not finalized yet.
    pending_reads: u32,
    /// Shards that reported an actual finalization (vs. settling at
    /// arrival, which produces no event).
    finalized_shards: u32,
    /// EXT violations summed across the shards' finalizations.
    violations: u32,
}

/// The sharded parallel online checker (see the module docs).
///
/// Implements the same streaming [`Checker`] session trait as
/// [`OnlineChecker`], so `run_plan`, the `aion` facade and every
/// example drive it unchanged. Final verdicts and violation sets are
/// identical to the single checker's for any shard count (property
/// tested in `tests/sharded_equivalence.rs`); event *timing* may lag
/// arrivals, since workers run asynchronously.
pub struct ShardedChecker {
    cfg: AionConfig,
    shards: usize,
    cmd_tx: Vec<Sender<ShardCmd>>,
    reply_rx: Receiver<ShardReply>,
    workers: Vec<JoinHandle<()>>,
    /// Coordinator-owned global checks — the same `GlobalChecks` code
    /// the single checker runs, executed once per whole transaction.
    globals: GlobalChecks,
    report: CheckReport,
    pending: FxHashMap<TxnId, PendingFinalize>,
    received: usize,
    /// Malformed arrivals (duplicate tid, Eq. (1)) never forwarded.
    dropped: usize,
    now_ms: u64,
    last_tick_broadcast: u64,
    /// Outbound events staged since the last `feed`/`tick` returned.
    events: Vec<CheckEvent>,
}

impl ShardedChecker {
    /// Open a sharded session over `cfg.shard.shards` workers, each
    /// running an [`OnlineChecker`] with this configuration scoped to
    /// its key partition. Per-shard GC budgets divide
    /// [`OnlineGcPolicy`]'s `max_txns` evenly; a configured spill path
    /// gets a `.shardK` suffix per worker.
    ///
    /// # Panics
    ///
    /// Panics when a worker's spill file cannot be created; use
    /// [`ShardedChecker::try_new`] to handle that as a typed
    /// [`ConfigError`] instead.
    pub fn new(cfg: AionConfig) -> ShardedChecker {
        ShardedChecker::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ShardedChecker::new`], surfacing configuration problems (an
    /// uncreatable worker spill file) as a typed [`ConfigError`].
    /// Every worker checker is constructed *before* any thread spawns,
    /// so a failure leaves no half-started session behind.
    pub fn try_new(cfg: AionConfig) -> Result<ShardedChecker, ConfigError> {
        let shards = cfg.shard.shards.max(1);
        let mut checkers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let mut worker_cfg = cfg.clone();
            worker_cfg.coordinated = true;
            worker_cfg.shard_filter = if shards > 1 { Some((shard, shards)) } else { None };
            worker_cfg.gc = match worker_cfg.gc {
                OnlineGcPolicy::None => OnlineGcPolicy::None,
                OnlineGcPolicy::Checking { max_txns } => {
                    OnlineGcPolicy::Checking { max_txns: (max_txns / shards).max(1) }
                }
                OnlineGcPolicy::Full { max_txns } => {
                    OnlineGcPolicy::Full { max_txns: (max_txns / shards).max(1) }
                }
            };
            if let Some(path) = worker_cfg.spill_path.take() {
                let mut p = path.into_os_string();
                p.push(format!(".shard{shard}"));
                worker_cfg.spill_path = Some(p.into());
            }
            checkers.push(OnlineChecker::try_new(worker_cfg)?);
        }
        let (reply_tx, reply_rx) = unbounded::<ShardReply>();
        let mut cmd_tx = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard, checker) in checkers.into_iter().enumerate() {
            let (tx, rx) = unbounded::<ShardCmd>();
            cmd_tx.push(tx);
            let events_on = checker.config().events;
            let reply_tx = reply_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("aion-shard-{shard}"))
                    .spawn(move || worker_loop(shard, checker, rx, reply_tx, events_on))
                    .expect("spawn shard worker"),
            );
        }
        Ok(ShardedChecker {
            cfg,
            shards,
            cmd_tx,
            reply_rx,
            workers,
            globals: GlobalChecks::default(),
            report: CheckReport::new(),
            pending: FxHashMap::default(),
            received: 0,
            dropped: 0,
            now_ms: 0,
            last_tick_broadcast: 0,
            events: Vec::new(),
        })
    }

    /// A sharded session with `shards` workers over an otherwise
    /// default configuration (in-memory spilling: infallible).
    pub fn with_shards(shards: usize) -> ShardedChecker {
        let mut cfg = AionConfig::default();
        cfg.shard.shards = shards.max(1);
        ShardedChecker::try_new(cfg).expect("in-memory sessions cannot fail to open")
    }

    /// The session's configuration.
    pub fn config(&self) -> &AionConfig {
        &self.cfg
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Stable checker name, e.g. `"aion-si-sharded"` (or
    /// `"aion-mixed-sharded"` for per-session/per-txn policies).
    pub fn checker_name(&self) -> &'static str {
        match aion_level_name(&self.cfg.levels) {
            "aion-rc" => "aion-rc-sharded",
            "aion-ra" => "aion-ra-sharded",
            "aion-si" => "aion-si-sharded",
            "aion-ser" => "aion-ser-sharded",
            "aion-mixed" => "aion-mixed-sharded",
            _ => "aion-sharded",
        }
    }

    /// Coordinator-side violations (integrity + SESSION) reported so
    /// far. Worker-side violations live in the workers until `finish`.
    pub fn coordinator_report(&self) -> &CheckReport {
        &self.report
    }

    fn emit(&mut self, v: Violation) {
        if self.cfg.events {
            self.events.push(CheckEvent::Violation(v.clone()));
        }
        self.report.push(v);
    }

    /// Receive one transaction at (virtual) time `now_ms`: run the
    /// global checks, route the footprint to its shard(s), and return
    /// every event that has surfaced so far (coordinator violations
    /// synchronously; worker events as their replies arrive).
    pub fn receive(&mut self, txn: Transaction, now_ms: u64) -> Vec<CheckEvent> {
        self.now_ms = self.now_ms.max(now_ms);
        self.received += 1;

        // --- global checks: the single checker's `GlobalChecks`, run
        //     once per whole transaction, at the same resolved level the
        //     workers will check the footprint at ------------------------
        let level = self.cfg.levels.level_for(&txn);
        let mut violations = Vec::new();
        let admitted = self.globals.admit(&txn, level, |violation| violations.push(violation));
        for violation in violations {
            self.emit(violation);
        }
        if !admitted {
            self.dropped += 1;
            self.pump();
            return std::mem::take(&mut self.events);
        }

        // --- route ------------------------------------------------------
        let tid = txn.tid;
        let now = self.now_ms;
        match route_txn(txn, self.shards) {
            RoutedTxn::Single { shard, txn } => {
                self.track_pending(tid, &txn, 1);
                self.send(shard, ShardCmd::Feed { txn: Arc::new(txn), now_ms: now });
            }
            RoutedTxn::Split { shards, txn } => {
                self.track_pending(tid, &txn, shards.len() as u32);
                let txn = Arc::new(txn);
                for &shard in &shards {
                    self.send(shard, ShardCmd::Feed { txn: Arc::clone(&txn), now_ms: now });
                }
            }
        }
        self.pump();
        std::mem::take(&mut self.events)
    }

    /// Register the number of routed parts whose `Fed` replies will
    /// drive the `ExtFinalized` merge. Transactions with no reads at
    /// all are skipped — no shard can ever report tentative verdicts
    /// for them.
    fn track_pending(&mut self, tid: TxnId, txn: &Transaction, parts: u32) {
        if self.cfg.events && txn.ops.iter().any(aion_types::Op::is_read) {
            self.pending.insert(
                tid,
                PendingFinalize {
                    awaiting_fed: parts,
                    pending_reads: 0,
                    finalized_shards: 0,
                    violations: 0,
                },
            );
        }
    }

    fn send(&self, shard: usize, cmd: ShardCmd) {
        // A worker can only be gone if it panicked; surface that at
        // finish/join instead of here.
        let _ = self.cmd_tx[shard].send(cmd);
    }

    /// Advance the virtual clock. Broadcasts to workers at most every
    /// [`aion_types::ShardConfig::tick_broadcast_ms`] virtual ms —
    /// workers self-tick before each arrival, so this only affects how
    /// promptly idle shards surface finalization *events*, never
    /// verdicts. `u64::MAX` drains synchronously (see module docs).
    pub fn tick(&mut self, now_ms: u64) -> Vec<CheckEvent> {
        self.now_ms = self.now_ms.max(now_ms);
        if now_ms == u64::MAX {
            self.broadcast_tick(u64::MAX);
            self.barrier();
        } else if now_ms.saturating_sub(self.last_tick_broadcast)
            >= self.cfg.shard.tick_broadcast_ms
        {
            self.broadcast_tick(now_ms);
        }
        self.pump();
        std::mem::take(&mut self.events)
    }

    fn broadcast_tick(&mut self, now_ms: u64) {
        self.last_tick_broadcast = now_ms;
        for shard in 0..self.shards {
            self.send(shard, ShardCmd::Tick { now_ms });
        }
    }

    /// Block until every worker has processed all commands sent so far,
    /// absorbing their replies.
    fn barrier(&mut self) {
        for shard in 0..self.shards {
            self.send(shard, ShardCmd::Flush);
        }
        let mut flushed = 0usize;
        while flushed < self.shards {
            match self.reply_rx.recv() {
                Ok(ShardReply::Flushed) => flushed += 1,
                Ok(reply) => self.absorb(reply, &mut Vec::new()),
                Err(_) => break, // a worker died; finish() will report via join
            }
        }
    }

    /// Drain currently-ready worker replies without blocking.
    fn pump(&mut self) {
        while let Ok(reply) = self.reply_rx.try_recv() {
            self.absorb(reply, &mut Vec::new());
        }
    }

    /// Fold one worker reply into coordinator state; `Done` outcomes are
    /// pushed onto `outcomes`.
    fn absorb(&mut self, reply: ShardReply, outcomes: &mut Vec<(usize, Outcome)>) {
        match reply {
            ShardReply::Fed { tid, pending, events } => {
                self.note_fed(tid, pending);
                self.ingest(events);
            }
            ShardReply::Ticked { events } => self.ingest(events),
            ShardReply::Flushed => {}
            ShardReply::Done { shard, outcome } => outcomes.push((shard, *outcome)),
        }
    }

    /// Sequence worker events onto the outbound stream, merging
    /// split-transaction `ExtFinalized`s into single events.
    fn ingest(&mut self, events: Vec<CheckEvent>) {
        for event in events {
            match event {
                CheckEvent::ExtFinalized { tid, violations } => {
                    self.note_finalized(tid, violations)
                }
                other => self.events.push(other),
            }
        }
    }

    /// One routed part was processed by its worker; `pending` says
    /// whether that part still holds tentative reads (so an
    /// `ExtFinalized` from that shard will follow eventually).
    fn note_fed(&mut self, tid: TxnId, pending: bool) {
        let Some(p) = self.pending.get_mut(&tid) else { return };
        p.awaiting_fed -= 1;
        if pending {
            p.pending_reads += 1;
        }
        self.maybe_emit_finalized(tid);
    }

    /// One shard finalized its part of `tid`. Per-worker FIFO
    /// guarantees the shard's own `Fed` reply arrived first, so
    /// `pending_reads` is positive here.
    fn note_finalized(&mut self, tid: TxnId, violations: u32) {
        let Some(p) = self.pending.get_mut(&tid) else {
            // Unknown tid (e.g. events toggled mid-session): pass through.
            self.events.push(CheckEvent::ExtFinalized { tid, violations });
            return;
        };
        p.pending_reads -= 1;
        p.finalized_shards += 1;
        p.violations += violations;
        self.maybe_emit_finalized(tid);
    }

    fn maybe_emit_finalized(&mut self, tid: TxnId) {
        let Some(p) = self.pending.get(&tid) else { return };
        if p.awaiting_fed > 0 || p.pending_reads > 0 {
            return;
        }
        // Every part is processed and none still holds tentative reads.
        // Emit one merged event iff some shard actually held tentative
        // verdicts past arrival — mirroring the single checker, which
        // only announces transactions that went through its deadline
        // queue.
        let (finalized_shards, violations) = (p.finalized_shards, p.violations);
        self.pending.remove(&tid);
        if finalized_shards > 0 {
            self.events.push(CheckEvent::ExtFinalized { tid, violations });
        }
    }

    /// Finish the session: join the workers and merge their outcomes —
    /// coordinator report first, then each shard's in shard order (so
    /// the merged report is deterministic), with stats and flip
    /// summaries folded shard-aware and `received`/`finalized` fixed up
    /// to whole-transaction counts.
    pub fn finish(mut self) -> Outcome {
        for shard in 0..self.shards {
            self.send(shard, ShardCmd::Finish);
        }
        let mut outcomes: Vec<(usize, Outcome)> = Vec::with_capacity(self.shards);
        while outcomes.len() < self.shards {
            match self.reply_rx.recv() {
                Ok(reply) => {
                    let mut done = Vec::new();
                    self.absorb(reply, &mut done);
                    outcomes.append(&mut done);
                }
                Err(_) => break, // worker died; join below panics with its message
            }
        }
        for handle in self.workers.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        outcomes.sort_unstable_by_key(|(shard, _)| *shard);

        let mut report = std::mem::take(&mut self.report);
        let mut stats = CheckerStats::default();
        let mut flips = FlipSummary::default();
        for (_, outcome) in outcomes {
            report.merge(outcome.report);
            stats.absorb_shard(&outcome.stats);
            flips.absorb_shard(&outcome.flips);
        }
        // Whole-transaction counts: a split transaction was received by
        // several workers but is one transaction; malformed arrivals
        // were never forwarded and never finalize.
        stats.received = self.received;
        stats.finalized = self.received - self.dropped;

        Outcome::new(self.checker_name(), report, self.received).with_stats(stats).with_flips(flips)
    }
}

impl Checker for ShardedChecker {
    fn name(&self) -> &'static str {
        self.checker_name()
    }

    fn feed(&mut self, txn: Transaction, now_ms: u64) -> Vec<CheckEvent> {
        self.receive(txn, now_ms)
    }

    fn tick(&mut self, now_ms: u64) -> Vec<CheckEvent> {
        ShardedChecker::tick(self, now_ms)
    }

    fn finish(self) -> Outcome {
        ShardedChecker::finish(self)
    }
}

/// A shard worker: drains commands in order, catching its clock up
/// before each arrival so finalization verdicts match the single
/// checker's, and replies with events (when on) plus the pending flag
/// the coordinator's `ExtFinalized` merge needs.
fn worker_loop(
    shard: usize,
    checker: OnlineChecker,
    rx: Receiver<ShardCmd>,
    tx: Sender<ShardReply>,
    events_on: bool,
) {
    let mut checker = Some(checker);
    while let Ok(cmd) = rx.recv() {
        let ck = checker.as_mut().expect("worker alive");
        match cmd {
            ShardCmd::Feed { txn, now_ms } => {
                let tid = txn.tid;
                // Last holder takes ownership; other shards of a split
                // transaction deep-clone here, off the coordinator's
                // critical path.
                let txn = Arc::try_unwrap(txn).unwrap_or_else(|shared| (*shared).clone());
                let mut events = ck.tick(now_ms);
                events.extend(ck.receive(txn, now_ms));
                if events_on {
                    // Whether this shard still holds tentative reads for
                    // the transaction — the single source of truth the
                    // coordinator's ExtFinalized merge is driven by.
                    let pending = ck.is_pending(tid);
                    let _ = tx.send(ShardReply::Fed { tid, pending, events });
                }
            }
            ShardCmd::Tick { now_ms } => {
                let events = ck.tick(now_ms);
                if events_on {
                    let _ = tx.send(ShardReply::Ticked { events });
                }
            }
            ShardCmd::Flush => {
                let _ = tx.send(ShardReply::Flushed);
            }
            ShardCmd::Finish => {
                let outcome = Box::new(checker.take().expect("worker alive").finish());
                let _ = tx.send(ShardReply::Done { shard, outcome });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{AxiomKind, DataKind, IsolationLevel, Key, TxnBuilder, Value};

    fn t(tid: u64, sid: u32, sno: u32, s: u64, c: u64) -> TxnBuilder {
        TxnBuilder::new(tid).session(sid, sno).interval(s, c)
    }

    fn sharded(n: usize) -> ShardedChecker {
        OnlineChecker::builder().shards(n).build_sharded().unwrap()
    }

    #[test]
    fn valid_history_passes_across_shards() {
        let mut a = sharded(4);
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).put(Key(2), Value(6)).build(), 0);
        a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(5)).read(Key(2), Value(6)).build(), 1);
        let out = a.finish();
        assert!(out.is_ok(), "{}", out.report);
        assert_eq!(out.txns, 2);
        assert_eq!(out.stats.received, 2);
        assert_eq!(out.stats.finalized, 2);
        assert_eq!(out.checker, "aion-si-sharded");
    }

    #[test]
    fn global_checks_report_once() {
        let mut a = sharded(4);
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(1)).put(Key(2), Value(2)).build(), 0);
        // Duplicate tid, session gap, and Eq. (1) violations are
        // coordinator-owned: exactly one report each, like the single
        // checker.
        a.receive(t(1, 1, 0, 3, 4).put(Key(3), Value(3)).build(), 0);
        a.receive(t(3, 0, 5, 9, 8).put(Key(4), Value(4)).build(), 0);
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Integrity), 2, "{}", out.report);
        assert_eq!(out.report.count(AxiomKind::Session), 1, "{}", out.report);
        assert_eq!(out.stats.received, 3);
        assert_eq!(out.stats.finalized, 1, "both malformed arrivals dropped");
    }

    #[test]
    fn cross_shard_ext_finalizations_merge_into_one_event() {
        // A transaction reading unjustifiable values on many keys: its
        // sub-footprints finalize on several shards, but exactly one
        // ExtFinalized must surface, with the summed violation count.
        let mut a = sharded(4);
        let mut txn = TxnBuilder::new(1).session(0, 0).interval(10, 11);
        for k in 0..8u64 {
            txn = txn.read(Key(k), Value(99));
        }
        a.receive(txn.build(), 0);
        let mut events = a.tick(u64::MAX);
        let finalized: Vec<_> =
            events.drain(..).filter(|e| matches!(e, CheckEvent::ExtFinalized { .. })).collect();
        assert_eq!(
            finalized,
            vec![CheckEvent::ExtFinalized { tid: TxnId(1), violations: 8 }],
            "one merged finalization with the summed violations"
        );
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Ext), 8, "{}", out.report);
    }

    #[test]
    fn settled_cross_shard_reads_produce_no_finalization_event() {
        // Reads justified at arrival stay pending until the timeout, so
        // the merged event appears on drain with zero violations.
        let mut a = sharded(2);
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).put(Key(2), Value(6)).build(), 0);
        a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(5)).read(Key(2), Value(6)).build(), 0);
        let events = a.tick(u64::MAX);
        let finalizations =
            events.iter().filter(|e| matches!(e, CheckEvent::ExtFinalized { .. })).count();
        assert_eq!(finalizations, 1, "{events:?}");
        assert!(a.finish().is_ok());
    }

    #[test]
    fn verdict_flips_stream_through() {
        let mut a = sharded(3);
        let mut events = a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(5)).build(), 0);
        // Justifying writer arrives late: the worker's flip must surface
        // on the coordinator's outbound stream (possibly on a later call).
        events.extend(a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).build(), 9));
        events.extend(a.tick(u64::MAX));
        assert!(
            events.iter().any(|e| matches!(e, CheckEvent::VerdictFlip { tid: TxnId(2), .. })),
            "{events:?}"
        );
        let out = a.finish();
        assert!(out.is_ok(), "{}", out.report);
        assert_eq!(out.flips.total_flips, 1);
    }

    #[test]
    fn events_off_runs_quiet_but_correct() {
        let mut a = OnlineChecker::builder().shards(4).events(false).build_sharded().unwrap();
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).build(), 0);
        let evs = a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(9)).build(), 0);
        assert!(evs.is_empty());
        assert!(a.tick(u64::MAX).is_empty());
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "report unaffected by events off");
    }

    #[test]
    fn one_shard_degenerates_to_single_checker_behaviour() {
        let mut single = OnlineChecker::new_si(DataKind::Kv);
        let mut sharded = sharded(1);
        let txns = vec![
            t(1, 0, 0, 1, 2).put(Key(1), Value(1)).build(),
            t(2, 1, 0, 3, 5).put(Key(1), Value(2)).build(),
            t(3, 2, 0, 6, 9).read(Key(1), Value(2)).put(Key(2), Value(2)).build(),
            t(4, 3, 0, 8, 10).read(Key(2), Value(1)).build(),
            t(5, 4, 0, 4, 7).read(Key(1), Value(1)).put(Key(2), Value(1)).build(),
        ];
        for txn in &txns {
            single.receive(txn.clone(), 0);
            sharded.receive(txn.clone(), 0);
        }
        let (a, b) = (single.finish(), sharded.finish());
        assert_eq!(a.report.violations, b.report.violations);
        assert_eq!(a.flips.total_flips, b.flips.total_flips);
    }

    #[test]
    fn ser_mode_is_shard_aware_too() {
        let mut a =
            OnlineChecker::builder().level(IsolationLevel::Ser).shards(4).build_sharded().unwrap();
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(1)).build(), 0);
        a.receive(t(2, 1, 0, 3, 6).put(Key(1), Value(2)).build(), 0);
        a.receive(t(3, 2, 0, 4, 7).read(Key(1), Value(1)).build(), 0);
        let out = a.finish();
        assert_eq!(out.checker, "aion-ser-sharded");
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "{}", out.report);
        assert_eq!(out.report.count(AxiomKind::NoConflict), 0);
    }
}
