//! Sharded parallel online checking: N shard workers, one coordinator.
//!
//! [`ShardedChecker`] scales [`OnlineChecker`] beyond one core by
//! partitioning the key space across `N` worker threads (one
//! single-threaded `OnlineChecker` each, fed over crossbeam channels)
//! while a coordinator owns everything that is *not* per-key:
//!
//! * **Routing** — each arrival is routed by [`crate::feed::shard_of`];
//!   a transaction touching several shards is split by
//!   [`crate::feed::route_txn`] into per-shard *sub-footprints* (same
//!   tid/sid/sno/timestamps, only the owned keys' operations).
//! * **Global checks** — duplicate tid/timestamp detection, SESSION,
//!   and Eq. (1) well-formedness need the whole transaction and the
//!   whole session stream, so the coordinator performs them exactly
//!   once, byte-for-byte like `OnlineChecker::receive`; workers run in
//!   *coordinated* mode and skip them.
//! * **Verdict-state ownership** — per-key state (frontier versions,
//!   readers/writers indexes, NOCONFLICT intervals, tentative EXT
//!   verdicts) lives entirely inside the owning shard. This is sound
//!   because every INT/EXT/NOCONFLICT axiom instance relates operations
//!   on a single key; see `docs/isolation-models.md`.
//! * **Event sequencing** — worker [`CheckEvent`]s are pumped onto one
//!   outbound stream (per-shard order preserved, shards interleaved by
//!   reply arrival). `ExtFinalized` events of a split transaction are
//!   *merged*: the coordinator counts the read-bearing sub-footprints
//!   at route time, holds per-shard finalizations until the last one
//!   lands, and emits a single event with the summed violation count —
//!   exactly one `ExtFinalized` per pending transaction, as in the
//!   single checker.
//! * **Outcome merging** — `finish` joins the workers and folds their
//!   reports, [`CheckerStats`] and [`FlipSummary`]s (in shard order,
//!   deterministically) into one uniform [`Outcome`], fixing up
//!   `received`/`finalized` to whole-transaction counts.
//!
//! Workers catch their virtual clock up before processing each arrival,
//! so EXT finalization *verdicts* are identical to the single checker's
//! regardless of when `tick`s are forwarded; the coordinator therefore
//! rate-limits clock broadcasts to
//! [`aion_types::ShardConfig::tick_broadcast_ms`] and only pays the fan-out when
//! the clock meaningfully advances. `tick(u64::MAX)` (the end-of-stream
//! drain used by [`crate::feed::run_plan`]) is a synchronous barrier:
//! it flushes every worker so end-of-stream finalizations surface as
//! events before `finish`.
//!
//! ```
//! use aion_online::OnlineChecker;
//! use aion_types::{Checker, DataKind, IsolationLevel, Key, TxnBuilder, Value};
//!
//! let mut checker =
//!     OnlineChecker::builder().level(IsolationLevel::Si).shards(4).build_sharded().expect("config");
//! checker.feed(
//!     TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(7)).build(), 0);
//! checker.feed(
//!     TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(7)).build(), 1);
//! let outcome = checker.finish();
//! assert!(outcome.is_ok());
//! assert_eq!(outcome.txns, 2);
//! ```

use crate::checker::{
    aion_level_name, anchor_event, AionConfig, ConfigError, GlobalChecks, OnlineChecker,
    OnlineGcPolicy, OnlineTxn,
};
use crate::feed::{route_txn, shard_of, RoutedTxn};
use crate::index::ReadRef;
use crate::snapshot::{get_config, get_events, get_globals, put_config, put_events, put_globals};
use crate::transport::{
    ShardCmd, ShardReply, ShardTransport, SimSchedule, SimStats, SimTransport, ThreadTransport,
};
use aion_types::codec::{get_varint, put_varint, CodecError};
use aion_types::snapshot::{
    get_report, get_snapshot_header_versioned, put_report, put_snapshot_header, SnapshotError,
    SNAPSHOT_KIND_SHARDED,
};
use aion_types::{
    CheckEvent, CheckReport, Checker, CheckerStats, FlipSummary, FxHashMap, IsolationLevel, Key,
    Outcome, Snapshot, Timestamp, Transaction, TxnId, Violation,
};
use bytes::{BufMut, BytesMut};
use std::cmp::Reverse;
use std::path::Path;
use std::sync::Arc;

/// Merge state for one read-bearing transaction, driven entirely by
/// worker replies: the coordinator only knows how many `Fed` replies
/// to expect (one per routed part — pure routing knowledge); which
/// parts hold tentative reads is reported by the workers themselves,
/// so there is no cross-thread read-ownership predicate to keep in
/// agreement.
struct PendingFinalize {
    /// Routed parts whose `Fed` reply has not arrived yet.
    awaiting_fed: u32,
    /// Parts that replied `pending` and have not finalized yet.
    pending_reads: u32,
    /// Shards that reported an actual finalization (vs. settling at
    /// arrival, which produces no event).
    finalized_shards: u32,
    /// EXT violations summed across the shards' finalizations.
    violations: u32,
}

/// The sharded parallel online checker (see the module docs).
///
/// Implements the same streaming [`Checker`] session trait as
/// [`OnlineChecker`], so `run_plan`, the `aion` facade and every
/// example drive it unchanged. Final verdicts and violation sets are
/// identical to the single checker's for any shard count (property
/// tested in `tests/sharded_equivalence.rs`); event *timing* may lag
/// arrivals, since workers run asynchronously.
pub struct ShardedChecker {
    cfg: AionConfig,
    shards: usize,
    /// How commands reach the workers and replies come back: real
    /// threads over channels in production, the deterministic simulator
    /// under `aion-dst` (see [`crate::transport`]).
    transport: Box<dyn ShardTransport>,
    /// Coordinator-owned global checks — the same `GlobalChecks` code
    /// the single checker runs, executed once per whole transaction.
    globals: GlobalChecks,
    report: CheckReport,
    pending: FxHashMap<TxnId, PendingFinalize>,
    received: usize,
    /// Malformed arrivals (duplicate tid, Eq. (1)) never forwarded.
    dropped: usize,
    now_ms: u64,
    last_tick_broadcast: u64,
    /// Outbound events staged since the last `feed`/`tick` returned.
    events: Vec<CheckEvent>,
}

impl ShardedChecker {
    /// Open a sharded session over `cfg.shard.shards` workers, each
    /// running an [`OnlineChecker`] with this configuration scoped to
    /// its key partition. Per-shard GC budgets divide
    /// [`OnlineGcPolicy`]'s `max_txns` evenly; a configured spill path
    /// gets a `.shardK` suffix per worker.
    ///
    /// # Panics
    ///
    /// Panics when a worker's spill file cannot be created; use
    /// [`ShardedChecker::try_new`] to handle that as a typed
    /// [`ConfigError`] instead.
    pub fn new(cfg: AionConfig) -> ShardedChecker {
        // aion-lint: allow(panic-freedom) — documented constructor
        // contract; `try_new` is the typed-error path
        ShardedChecker::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ShardedChecker::new`], surfacing configuration problems (an
    /// uncreatable worker spill file) as a typed [`ConfigError`].
    /// Every worker checker is constructed *before* any thread spawns,
    /// so a failure leaves no half-started session behind.
    pub fn try_new(cfg: AionConfig) -> Result<ShardedChecker, ConfigError> {
        let checkers = Self::worker_checkers(&cfg)?;
        Ok(Self::fresh(cfg, Box::new(ThreadTransport::spawn(checkers))))
    }

    /// [`ShardedChecker::try_new`], but the workers run inline on the
    /// calling thread under the seeded adversarial [`SimSchedule`] —
    /// the deterministic simulation entry point used by `aion-dst`.
    /// Verdicts must be identical to [`ShardedChecker::try_new`]'s for
    /// any schedule; only event *timing* may differ.
    pub fn try_new_sim(cfg: AionConfig, sched: SimSchedule) -> Result<ShardedChecker, ConfigError> {
        let checkers = Self::worker_checkers(&cfg)?;
        Ok(Self::fresh(cfg, Box::new(SimTransport::new(checkers, sched))))
    }

    /// Every worker checker is constructed *before* any thread spawns,
    /// so a failure leaves no half-started session behind.
    fn worker_checkers(cfg: &AionConfig) -> Result<Vec<OnlineChecker>, ConfigError> {
        let shards = cfg.shard.shards.max(1);
        let mut checkers = Vec::with_capacity(shards);
        for shard in 0..shards {
            checkers.push(OnlineChecker::try_new(worker_config(cfg, shard, shards))?);
        }
        Ok(checkers)
    }

    fn fresh(cfg: AionConfig, transport: Box<dyn ShardTransport>) -> ShardedChecker {
        let shards = cfg.shard.shards.max(1);
        ShardedChecker {
            cfg,
            shards,
            transport,
            globals: GlobalChecks::default(),
            report: CheckReport::new(),
            pending: FxHashMap::default(),
            received: 0,
            dropped: 0,
            now_ms: 0,
            last_tick_broadcast: 0,
            events: Vec::new(),
        }
    }

    /// A sharded session with `shards` workers over an otherwise
    /// default configuration (in-memory spilling: infallible).
    pub fn with_shards(shards: usize) -> ShardedChecker {
        let mut cfg = AionConfig::default();
        cfg.shard.shards = shards.max(1);
        // aion-lint: allow(panic-freedom) — the only constructor error
        // is an uncreatable spill file, and this config spills in memory
        ShardedChecker::try_new(cfg).expect("in-memory sessions cannot fail to open")
    }

    /// The session's configuration.
    pub fn config(&self) -> &AionConfig {
        &self.cfg
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Stable checker name, e.g. `"aion-si-sharded"` (or
    /// `"aion-mixed-sharded"` for per-session/per-txn policies).
    pub fn checker_name(&self) -> &'static str {
        match aion_level_name(&self.cfg.levels) {
            "aion-rc" => "aion-rc-sharded",
            "aion-ra" => "aion-ra-sharded",
            "aion-si" => "aion-si-sharded",
            "aion-ser" => "aion-ser-sharded",
            "aion-mixed" => "aion-mixed-sharded",
            _ => "aion-sharded",
        }
    }

    /// Coordinator-side violations (integrity + SESSION) reported so
    /// far. Worker-side violations live in the workers until `finish`.
    pub fn coordinator_report(&self) -> &CheckReport {
        &self.report
    }

    fn emit(&mut self, v: Violation) {
        if self.cfg.events {
            self.events.push(CheckEvent::Violation(v.clone()));
        }
        self.report.push(v);
    }

    /// Receive one transaction at (virtual) time `now_ms`: run the
    /// global checks, route the footprint to its shard(s), and return
    /// every event that has surfaced so far (coordinator violations
    /// synchronously; worker events as their replies arrive).
    pub fn receive(&mut self, txn: Transaction, now_ms: u64) -> Vec<CheckEvent> {
        self.now_ms = self.now_ms.max(now_ms);
        self.received += 1;

        // --- global checks: the single checker's `GlobalChecks`, run
        //     once per whole transaction, at the same resolved level the
        //     workers will check the footprint at ------------------------
        let level = self.cfg.levels.level_for(&txn);
        let mut violations = Vec::new();
        let admitted = self.globals.admit(&txn, level, |violation| violations.push(violation));
        for violation in violations {
            self.emit(violation);
        }
        if !admitted {
            self.dropped += 1;
            self.pump();
            return std::mem::take(&mut self.events);
        }

        // --- route ------------------------------------------------------
        let tid = txn.tid;
        let now = self.now_ms;
        match route_txn(txn, self.shards) {
            RoutedTxn::Single { shard, txn } => {
                self.track_pending(tid, &txn, 1);
                self.send(shard, ShardCmd::Feed { txn: Arc::new(txn), now_ms: now });
            }
            RoutedTxn::Split { shards, txn } => {
                self.track_pending(tid, &txn, shards.len() as u32);
                let txn = Arc::new(txn);
                for &shard in &shards {
                    self.send(shard, ShardCmd::Feed { txn: Arc::clone(&txn), now_ms: now });
                }
            }
        }
        self.pump();
        std::mem::take(&mut self.events)
    }

    /// Receive a run of arrivals in order, amortizing the channel
    /// traffic: global checks, routing and pending-merge registration
    /// happen per arrival exactly as in [`ShardedChecker::receive`], but
    /// each shard gets **one** `ShardCmd::FeedBatch` carrying all of
    /// its parts (in arrival order, so per-worker FIFO — and therefore
    /// every verdict — is unchanged) instead of one channel send per
    /// part.
    pub fn receive_batch(&mut self, batch: Vec<(Transaction, u64)>) -> Vec<CheckEvent> {
        let mut per_shard: Vec<Vec<(Arc<Transaction>, u64)>> = vec![Vec::new(); self.shards];
        for (txn, now_ms) in batch {
            self.now_ms = self.now_ms.max(now_ms);
            self.received += 1;

            let level = self.cfg.levels.level_for(&txn);
            let mut violations = Vec::new();
            let admitted = self.globals.admit(&txn, level, |violation| violations.push(violation));
            for violation in violations {
                self.emit(violation);
            }
            if !admitted {
                self.dropped += 1;
                continue;
            }

            let tid = txn.tid;
            let now = self.now_ms;
            match route_txn(txn, self.shards) {
                RoutedTxn::Single { shard, txn } => {
                    self.track_pending(tid, &txn, 1);
                    // aion-lint: allow(panic-freedom) — `route_txn`
                    // computes shards modulo `self.shards`, the buffer's
                    // exact length
                    per_shard[shard].push((Arc::new(txn), now));
                }
                RoutedTxn::Split { shards, txn } => {
                    self.track_pending(tid, &txn, shards.len() as u32);
                    let txn = Arc::new(txn);
                    for &shard in &shards {
                        // aion-lint: allow(panic-freedom) — same modulo
                        // bound as the single-shard arm
                        per_shard[shard].push((Arc::clone(&txn), now));
                    }
                }
            }
        }
        for (shard, parts) in per_shard.into_iter().enumerate() {
            if !parts.is_empty() {
                self.send(shard, ShardCmd::FeedBatch { parts });
            }
        }
        self.pump();
        std::mem::take(&mut self.events)
    }

    /// Register the number of routed parts whose `Fed` replies will
    /// drive the `ExtFinalized` merge. Transactions with no reads at
    /// all are skipped — no shard can ever report tentative verdicts
    /// for them.
    fn track_pending(&mut self, tid: TxnId, txn: &Transaction, parts: u32) {
        if self.cfg.events && txn.ops.iter().any(aion_types::Op::is_read) {
            self.pending.insert(
                tid,
                PendingFinalize {
                    awaiting_fed: parts,
                    pending_reads: 0,
                    finalized_shards: 0,
                    violations: 0,
                },
            );
        }
    }

    fn send(&mut self, shard: usize, cmd: ShardCmd) {
        self.transport.send(shard, cmd);
    }

    /// Schedule/fault counters of the simulated transport (`None` for
    /// production sessions over real threads).
    pub fn sim_stats(&self) -> Option<SimStats> {
        self.transport.sim_stats()
    }

    /// Advance the virtual clock. Broadcasts to workers at most every
    /// [`aion_types::ShardConfig::tick_broadcast_ms`] virtual ms —
    /// workers self-tick before each arrival, so this only affects how
    /// promptly idle shards surface finalization *events*, never
    /// verdicts. `u64::MAX` drains synchronously (see module docs).
    pub fn tick(&mut self, now_ms: u64) -> Vec<CheckEvent> {
        self.now_ms = self.now_ms.max(now_ms);
        if now_ms == u64::MAX {
            self.broadcast_tick(u64::MAX);
            self.barrier();
        } else if now_ms.saturating_sub(self.last_tick_broadcast)
            >= self.cfg.shard.tick_broadcast_ms
        {
            self.broadcast_tick(now_ms);
        }
        self.pump();
        std::mem::take(&mut self.events)
    }

    fn broadcast_tick(&mut self, now_ms: u64) {
        self.last_tick_broadcast = now_ms;
        for shard in 0..self.shards {
            self.send(shard, ShardCmd::Tick { now_ms });
        }
    }

    /// Block until every worker has processed all commands sent so far,
    /// absorbing their replies.
    fn barrier(&mut self) {
        for shard in 0..self.shards {
            self.send(shard, ShardCmd::Flush);
        }
        let mut flushed = 0usize;
        while flushed < self.shards {
            match self.transport.recv() {
                Some(ShardReply::Flushed) => flushed += 1,
                Some(reply) => self.absorb(reply, &mut Vec::new()),
                None => break, // a worker died; finish() will report via join
            }
        }
    }

    /// Drain currently-ready worker replies without blocking.
    fn pump(&mut self) {
        while let Some(reply) = self.transport.try_recv() {
            self.absorb(reply, &mut Vec::new());
        }
    }

    /// Fold one worker reply into coordinator state; `Done` outcomes are
    /// pushed onto `outcomes`.
    fn absorb(&mut self, reply: ShardReply, outcomes: &mut Vec<(usize, Outcome)>) {
        match reply {
            ShardReply::Fed { tid, pending, events } => {
                self.note_fed(tid, pending);
                self.ingest(events);
            }
            ShardReply::Ticked { events } => self.ingest(events),
            ShardReply::Flushed => {}
            // Only produced inside `checkpoint`'s own collection loop; a
            // stray one (a checkpoint aborted by a worker error) is
            // dropped here rather than wedging the reply stream.
            ShardReply::Checkpointed { .. } => {}
            ShardReply::Done { shard, outcome } => outcomes.push((shard, *outcome)),
        }
    }

    /// Sequence worker events onto the outbound stream, merging
    /// split-transaction `ExtFinalized`s into single events.
    fn ingest(&mut self, events: Vec<CheckEvent>) {
        for event in events {
            match event {
                CheckEvent::ExtFinalized { tid, violations } => {
                    self.note_finalized(tid, violations)
                }
                other => self.events.push(other),
            }
        }
    }

    /// One routed part was processed by its worker; `pending` says
    /// whether that part still holds tentative reads (so an
    /// `ExtFinalized` from that shard will follow eventually).
    fn note_fed(&mut self, tid: TxnId, pending: bool) {
        let Some(p) = self.pending.get_mut(&tid) else { return };
        p.awaiting_fed -= 1;
        if pending {
            p.pending_reads += 1;
        }
        self.maybe_emit_finalized(tid);
    }

    /// One shard finalized its part of `tid`. Per-worker FIFO
    /// guarantees the shard's own `Fed` reply arrived first, so
    /// `pending_reads` is positive here.
    fn note_finalized(&mut self, tid: TxnId, violations: u32) {
        let Some(p) = self.pending.get_mut(&tid) else {
            // Unknown tid (e.g. events toggled mid-session): pass through.
            self.events.push(CheckEvent::ExtFinalized { tid, violations });
            return;
        };
        p.pending_reads -= 1;
        p.finalized_shards += 1;
        p.violations += violations;
        self.maybe_emit_finalized(tid);
    }

    fn maybe_emit_finalized(&mut self, tid: TxnId) {
        let Some(p) = self.pending.get(&tid) else { return };
        if p.awaiting_fed > 0 || p.pending_reads > 0 {
            return;
        }
        // Every part is processed and none still holds tentative reads.
        // Emit one merged event iff some shard actually held tentative
        // verdicts past arrival — mirroring the single checker, which
        // only announces transactions that went through its deadline
        // queue.
        let (finalized_shards, violations) = (p.finalized_shards, p.violations);
        self.pending.remove(&tid);
        if finalized_shards > 0 {
            self.events.push(CheckEvent::ExtFinalized { tid, violations });
        }
    }

    /// Finish the session: join the workers and merge their outcomes —
    /// coordinator report first, then each shard's in shard order (so
    /// the merged report is deterministic), with stats and flip
    /// summaries folded shard-aware and `received`/`finalized` fixed up
    /// to whole-transaction counts.
    pub fn finish(mut self) -> Outcome {
        for shard in 0..self.shards {
            self.send(shard, ShardCmd::Finish);
        }
        let mut outcomes: Vec<(usize, Outcome)> = Vec::with_capacity(self.shards);
        while outcomes.len() < self.shards {
            match self.transport.recv() {
                Some(reply) => {
                    let mut done = Vec::new();
                    self.absorb(reply, &mut done);
                    outcomes.append(&mut done);
                }
                None => break, // worker died; join below panics with its message
            }
        }
        self.transport.join();
        outcomes.sort_unstable_by_key(|(shard, _)| *shard);

        let mut report = std::mem::take(&mut self.report);
        let mut stats = CheckerStats::default();
        let mut flips = FlipSummary::default();
        for (_, outcome) in outcomes {
            report.merge(outcome.report);
            stats.absorb_shard(&outcome.stats);
            flips.absorb_shard(&outcome.flips);
        }
        // Whole-transaction counts: a split transaction was received by
        // several workers but is one transaction; malformed arrivals
        // were never forwarded and never finalize.
        stats.received = self.received;
        stats.finalized = self.received - self.dropped;

        Outcome::new(self.checker_name(), report, self.received).with_stats(stats).with_flips(flips)
    }

    /// Checkpoint the whole sharded session — coordinator state plus one
    /// embedded [`OnlineChecker`] snapshot body per worker — as a
    /// `SNAPSHOT_KIND_SHARDED` envelope.
    ///
    /// Runs a full barrier first, so every in-flight arrival is processed
    /// and every staged worker event has been absorbed: the snapshot cuts
    /// the session between arrivals, the granularity at which
    /// [`ShardedChecker::restore`] resumes with identical verdicts.
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, SnapshotError> {
        self.barrier();
        for shard in 0..self.shards {
            self.send(shard, ShardCmd::Checkpoint);
        }
        let mut bodies: Vec<Option<Vec<u8>>> = (0..self.shards).map(|_| None).collect();
        let mut got = 0usize;
        while got < self.shards {
            match self.transport.recv() {
                Some(ShardReply::Checkpointed { shard, body }) => {
                    let Some(slot) = bodies.get_mut(shard) else {
                        return Err(SnapshotError::Corrupt(format!(
                            "checkpoint reply from unknown shard {shard}"
                        )));
                    };
                    *slot = Some(body?);
                    got += 1;
                }
                Some(reply) => self.absorb(reply, &mut Vec::new()),
                None => {
                    return Err(SnapshotError::Corrupt(
                        "a shard worker died during checkpoint".into(),
                    ))
                }
            }
        }

        let mut buf = BytesMut::with_capacity(4096);
        put_snapshot_header(&mut buf, SNAPSHOT_KIND_SHARDED);
        put_config(&mut buf, &self.cfg);
        put_varint(&mut buf, self.shards as u64);
        for body in bodies {
            let Some(body) = body else {
                return Err(SnapshotError::Corrupt("a shard checkpoint body went missing".into()));
            };
            put_varint(&mut buf, body.len() as u64);
            buf.put_slice(&body);
        }
        put_globals(&mut buf, &self.globals);
        put_report(&mut buf, &self.report);
        let mut pend: Vec<(u64, &PendingFinalize)> =
            self.pending.iter().map(|(t, p)| (t.0, p)).collect();
        pend.sort_unstable_by_key(|(t, _)| *t);
        put_varint(&mut buf, pend.len() as u64);
        for (tid, p) in pend {
            put_varint(&mut buf, tid);
            put_varint(&mut buf, u64::from(p.awaiting_fed));
            put_varint(&mut buf, u64::from(p.pending_reads));
            put_varint(&mut buf, u64::from(p.finalized_shards));
            put_varint(&mut buf, u64::from(p.violations));
        }
        put_varint(&mut buf, self.received as u64);
        put_varint(&mut buf, self.dropped as u64);
        put_varint(&mut buf, self.now_ms);
        put_varint(&mut buf, self.last_tick_broadcast);
        put_events(&mut buf, &self.events);
        Ok(buf.to_vec())
    }

    /// [`checkpoint`](Self::checkpoint) straight to a file.
    pub fn checkpoint_to(&mut self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let bytes = self.checkpoint()?;
        std::fs::write(path, bytes)?;
        Ok(())
    }

    /// Restore a sharded session from [`checkpoint`](Self::checkpoint)
    /// bytes with the *same* shard count, respawning one worker per
    /// embedded snapshot. Worker spill files (the configured path with
    /// its `.shardK` suffix) are re-created and re-populated from the
    /// snapshot. Verdicts, reports and events continue exactly as the
    /// interrupted session would have.
    pub fn restore(bytes: &[u8]) -> Result<ShardedChecker, SnapshotError> {
        let (parsed, old_workers) = SharedParse::read(bytes)?;
        Ok(parsed.into_checker(Box::new(ThreadTransport::spawn(old_workers))))
    }

    /// [`ShardedChecker::restore`] onto the deterministic simulated
    /// transport (see [`ShardedChecker::try_new_sim`]).
    pub fn restore_sim(bytes: &[u8], sched: SimSchedule) -> Result<ShardedChecker, SnapshotError> {
        let (parsed, old_workers) = SharedParse::read(bytes)?;
        Ok(parsed.into_checker(Box::new(SimTransport::new(old_workers, sched))))
    }

    /// Restore from a checkpoint file written by
    /// [`checkpoint_to`](Self::checkpoint_to).
    pub fn restore_from(path: impl AsRef<Path>) -> Result<ShardedChecker, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::restore(&bytes)
    }

    /// Restore a sharded checkpoint onto a *different* shard count: every
    /// worker's state (including its spilled segments) is reloaded,
    /// merged per transaction, and re-partitioned under the new key
    /// routing.
    ///
    /// The resumed session reports the same violations and final verdicts
    /// as the interrupted one would have; runtime counters (spill/GC
    /// statistics, re-evaluation counts) restart from the merged totals
    /// and event *timing* may differ — resharding is verdict-equivalent,
    /// not byte-identical (`tests/snapshot_differential.rs` pins the
    /// former for the same-topology paths).
    pub fn restore_resharded(
        bytes: &[u8],
        new_shards: usize,
    ) -> Result<ShardedChecker, SnapshotError> {
        Self::restore_resharded_with(bytes, new_shards, |w| Box::new(ThreadTransport::spawn(w)))
    }

    /// [`ShardedChecker::restore_resharded`] onto the deterministic
    /// simulated transport (see [`ShardedChecker::try_new_sim`]).
    pub fn restore_resharded_sim(
        bytes: &[u8],
        new_shards: usize,
        sched: SimSchedule,
    ) -> Result<ShardedChecker, SnapshotError> {
        Self::restore_resharded_with(bytes, new_shards, move |w| {
            Box::new(SimTransport::new(w, sched))
        })
    }

    fn restore_resharded_with(
        bytes: &[u8],
        new_shards: usize,
        mk: impl FnOnce(Vec<OnlineChecker>) -> Box<dyn ShardTransport>,
    ) -> Result<ShardedChecker, SnapshotError> {
        let (mut parsed, old_workers) = SharedParse::read(bytes)?;
        let new_shards = new_shards.max(1);
        parsed.cfg.shard.shards = new_shards;
        parsed.shards = new_shards;
        let workers = resplit_workers(old_workers, &parsed.cfg, new_shards)?;

        // Re-derive the ExtFinalized merge state for the new topology:
        // the checkpoint barrier guarantees awaiting_fed reached zero, and
        // each new worker holding an unfinalized part will emit exactly
        // one finalization for it.
        let mut emitted = Vec::new();
        parsed.pending.retain(|tid, p| {
            p.awaiting_fed = 0;
            p.pending_reads = workers.iter().filter(|w| w.is_pending(*tid)).count() as u32;
            if p.pending_reads == 0 {
                // Every read settled before the checkpoint: surface the
                // merged event now iff some shard actually finalized.
                if p.finalized_shards > 0 {
                    emitted.push(CheckEvent::ExtFinalized { tid: *tid, violations: p.violations });
                }
                false
            } else {
                true
            }
        });
        parsed.events.extend(emitted);

        Ok(parsed.into_checker(mk(workers)))
    }
}

/// Parsed coordinator section of a sharded checkpoint (everything except
/// the worker snapshots, which are decoded separately so same-topology
/// restore and resharding can share this code).
struct SharedParse {
    cfg: AionConfig,
    shards: usize,
    globals: GlobalChecks,
    report: CheckReport,
    pending: FxHashMap<TxnId, PendingFinalize>,
    received: usize,
    dropped: usize,
    now_ms: u64,
    last_tick_broadcast: u64,
    events: Vec<CheckEvent>,
}

impl SharedParse {
    fn read(bytes: &[u8]) -> Result<(SharedParse, Vec<OnlineChecker>), SnapshotError> {
        let mut slice = bytes;
        let (version, kind) = get_snapshot_header_versioned(&mut slice)?;
        if kind != SNAPSHOT_KIND_SHARDED {
            return Err(SnapshotError::WrongKind { expected: SNAPSHOT_KIND_SHARDED, found: kind });
        }
        let cfg = get_config(&mut slice)?;
        let shards = get_varint(&mut slice)? as usize;
        if shards == 0 || shards > u16::MAX as usize {
            return Err(SnapshotError::Corrupt(format!("implausible shard count {shards}")));
        }
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let len = get_varint(&mut slice)? as usize;
            if slice.len() < len {
                return Err(SnapshotError::Codec(CodecError::UnexpectedEof));
            }
            let (body, rest) = slice.split_at(len);
            let mut body_slice = body;
            let ck = OnlineChecker::read_snapshot_body(&mut body_slice, version, None)?;
            if !body_slice.is_empty() {
                return Err(SnapshotError::Corrupt(
                    "trailing bytes after a worker snapshot body".into(),
                ));
            }
            workers.push(ck);
            slice = rest;
        }
        let globals = get_globals(&mut slice)?;
        let report = get_report(&mut slice)?;
        let mut pending = FxHashMap::default();
        for _ in 0..get_varint(&mut slice)? {
            let tid = TxnId(get_varint(&mut slice)?);
            pending.insert(
                tid,
                PendingFinalize {
                    awaiting_fed: get_varint(&mut slice)? as u32,
                    pending_reads: get_varint(&mut slice)? as u32,
                    finalized_shards: get_varint(&mut slice)? as u32,
                    violations: get_varint(&mut slice)? as u32,
                },
            );
        }
        let received = get_varint(&mut slice)? as usize;
        let dropped = get_varint(&mut slice)? as usize;
        let now_ms = get_varint(&mut slice)?;
        let last_tick_broadcast = get_varint(&mut slice)?;
        let events = get_events(&mut slice)?;
        if !slice.is_empty() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after checkpoint body",
                slice.len()
            )));
        }
        Ok((
            SharedParse {
                cfg,
                shards,
                globals,
                report,
                pending,
                received,
                dropped,
                now_ms,
                last_tick_broadcast,
                events,
            },
            workers,
        ))
    }

    fn into_checker(self, transport: Box<dyn ShardTransport>) -> ShardedChecker {
        ShardedChecker {
            cfg: self.cfg,
            shards: self.shards,
            transport,
            globals: self.globals,
            report: self.report,
            pending: self.pending,
            received: self.received,
            dropped: self.dropped,
            now_ms: self.now_ms,
            last_tick_broadcast: self.last_tick_broadcast,
            events: self.events,
        }
    }
}

/// The per-worker configuration derived from a session configuration:
/// coordinated mode, this shard's key filter, an even share of the GC
/// budget, and a `.shardK`-suffixed spill file.
fn worker_config(cfg: &AionConfig, shard: usize, shards: usize) -> AionConfig {
    let mut worker_cfg = cfg.clone();
    worker_cfg.coordinated = true;
    worker_cfg.shard_filter = if shards > 1 { Some((shard, shards)) } else { None };
    worker_cfg.gc = match worker_cfg.gc {
        OnlineGcPolicy::None => OnlineGcPolicy::None,
        OnlineGcPolicy::Checking { max_txns } => {
            OnlineGcPolicy::Checking { max_txns: (max_txns / shards).max(1) }
        }
        OnlineGcPolicy::Full { max_txns } => {
            OnlineGcPolicy::Full { max_txns: (max_txns / shards).max(1) }
        }
    };
    if let Some(path) = worker_cfg.spill_path.take() {
        let mut p = path.into_os_string();
        p.push(format!(".shard{shard}"));
        worker_cfg.spill_path = Some(p.into());
    }
    worker_cfg
}

/// Merge the decoded workers of a sharded checkpoint and re-partition
/// their state for `new_shards` workers (see
/// [`ShardedChecker::restore_resharded`]).
///
/// All spilled state is reloaded first, so the merge sees every
/// transaction; the new workers start with fresh (empty) spill stores
/// and no GC horizon. Reads belonging to parts that had already
/// finalized are marked settled, freezing their verdicts: re-partitioned
/// parts never re-report a violation or re-enter the deadline queue for
/// them.
fn resplit_workers(
    mut old: Vec<OnlineChecker>,
    base_cfg: &AionConfig,
    new_shards: usize,
) -> Result<Vec<OnlineChecker>, SnapshotError> {
    use std::collections::BTreeMap;

    struct MergedTxn {
        txn: Transaction,
        level: IsolationLevel,
        write_set: Vec<(Key, Snapshot)>,
        reads: Vec<crate::checker::ReadState>,
        anchor_keys: Vec<Key>,
    }

    // -- gather -----------------------------------------------------------
    let mut now_ms = 0u64;
    let mut deadline_of: FxHashMap<TxnId, u64> = FxHashMap::default();
    let mut merged: BTreeMap<u64, MergedTxn> = BTreeMap::new();
    let mut frontier: Vec<(Key, aion_types::EventKey, Snapshot)> = Vec::new();
    let mut membership: Vec<(Key, aion_types::EventKey, Snapshot)> = Vec::new();
    let mut ongoing: Vec<(Key, aion_types::EventKey, Vec<crate::index::OngoingWriter>)> =
        Vec::new();
    let mut writer_entries: Vec<(Key, aion_types::EventKey, Vec<TxnId>)> = Vec::new();
    let mut stats = CheckerStats::default();
    let mut report = CheckReport::new();
    let mut flips = crate::stats::FlipTracker::default();

    for w in &mut old {
        w.reload_below(Timestamp::MAX);
        now_ms = now_ms.max(w.now_ms);
        for &Reverse((d, tid)) in w.deadlines.iter() {
            deadline_of.entry(tid).and_modify(|x| *x = (*x).min(d)).or_insert(d);
        }
        for (key, event, snap) in w.frontier.iter() {
            frontier.push((key, event, snap.clone()));
        }
        for (key, event, snap) in w.membership.sorted_entries() {
            membership.push((key, event, snap.clone()));
        }
        for (key, event, writers) in w.ongoing.map.iter() {
            ongoing.push((key, event, writers.clone()));
        }
        // aion-lint: allow(determinism) — gather order is normalized by
        // the (key, event) sort before re-partitioning below
        for (key, chain) in w.writers.keys.iter() {
            for (event, items) in chain {
                writer_entries.push((*key, *event, items.clone()));
            }
        }
        stats.absorb_shard(&w.stats);
        report.merge(std::mem::take(&mut w.report));
        let t = std::mem::take(&mut w.flips);
        flips.detail |= t.detail;
        flips.total_flips += t.total_flips;
        // aion-lint: allow(determinism) — commutative += merge into a
        // map; the visit order cannot affect the merged counts
        for (pair, n) in t.flips_per_pair {
            *flips.flips_per_pair.entry(pair).or_insert(0) += n;
        }
        flips.txns_with_flips.extend(t.txns_with_flips);
        flips.rectify_ms.extend(t.rectify_ms);

        let tids: Vec<TxnId> = w.txns.keys().copied().collect();
        for tid in tids {
            let Some(mut t) = w.txns.remove(&tid) else { continue };
            if t.finalized {
                for r in &mut t.reads {
                    r.settled = true;
                }
            }
            let e = merged.entry(tid.0).or_insert_with(|| MergedTxn {
                txn: t.txn.clone(),
                level: t.level,
                write_set: Vec::new(),
                reads: Vec::new(),
                anchor_keys: Vec::new(),
            });
            // Keys are disjoint across shards, so these unions are
            // concatenations.
            e.write_set.append(&mut t.write_set);
            e.reads.append(&mut t.reads);
            e.anchor_keys.append(&mut t.anchor_keys);
        }
    }

    // -- re-partition ------------------------------------------------------
    // Normalize the gather order (the per-shard maps were drained in
    // storage order) so the rebuilt shards' insertion histories are a
    // pure function of the logical state, not of the old shard layout.
    frontier.sort_unstable_by_key(|(k, e, _)| (*k, *e));
    membership.sort_unstable_by_key(|(k, e, _)| (*k, *e));
    ongoing.sort_unstable_by_key(|(k, e, _)| (*k, *e));
    writer_entries.sort_unstable_by_key(|(k, e, _)| (*k, *e));

    let mut workers = Vec::with_capacity(new_shards);
    for m in 0..new_shards {
        let mut w = OnlineChecker::try_new(worker_config(base_cfg, m, new_shards)).map_err(
            |e| match e {
                ConfigError::SpillFile { source, .. } => SnapshotError::Io(source),
            },
        )?;
        w.now_ms = now_ms;
        workers.push(w);
    }
    for (key, event, snap) in frontier {
        // aion-lint: allow(panic-freedom) — `shard_of` is modulo
        // `new_shards`, the length `workers` was built with
        workers[shard_of(key, new_shards)].frontier.insert(key, event, snap);
    }
    // The raw frontier inserts above bypass membership maintenance, so
    // the committed-membership summaries travel explicitly (they may
    // also cover versions GC already pruned from the frontier).
    for (key, event, snap) in membership {
        // aion-lint: allow(panic-freedom) — same modulo bound
        workers[shard_of(key, new_shards)].membership.record(key, event, &snap, None);
    }
    for (key, event, writers) in ongoing {
        // aion-lint: allow(panic-freedom) — same modulo bound
        workers[shard_of(key, new_shards)].ongoing.map.insert(key, event, writers);
    }
    for (key, event, items) in writer_entries {
        // aion-lint: allow(panic-freedom) — same modulo bound
        let w = &mut workers[shard_of(key, new_shards)];
        for item in items {
            w.writers.insert(key, event, item);
        }
    }

    for (_, mut t) in merged {
        t.reads.sort_unstable_by_key(|r| r.op_index);
        t.write_set.sort_unstable_by_key(|(k, _)| *k);
        t.anchor_keys.sort_unstable();
        let tid = t.txn.tid;
        let anchor = anchor_event(&t.txn, t.level);
        for (m, w) in workers.iter_mut().enumerate() {
            let reads: Vec<crate::checker::ReadState> =
                t.reads.iter().filter(|r| shard_of(r.key, new_shards) == m).cloned().collect();
            let write_set: Vec<(Key, Snapshot)> = t
                .write_set
                .iter()
                .filter(|(k, _)| shard_of(*k, new_shards) == m)
                .cloned()
                .collect();
            if reads.is_empty() && write_set.is_empty() {
                continue;
            }
            let anchor_keys: Vec<Key> =
                t.anchor_keys.iter().copied().filter(|k| shard_of(*k, new_shards) == m).collect();
            let finalized = reads.iter().all(|r| r.settled);
            if !finalized {
                let deadline =
                    deadline_of.get(&tid).copied().unwrap_or(now_ms + base_cfg.ext_timeout_ms);
                w.deadlines.push(Reverse((deadline, tid)));
            }
            for (idx, r) in reads.iter().enumerate() {
                if !r.settled {
                    w.readers.insert(r.key, anchor, ReadRef { tid, read_idx: idx as u32 });
                }
            }
            w.txns.insert(
                tid,
                OnlineTxn {
                    txn: t.txn.clone(),
                    level: t.level,
                    write_set,
                    reads,
                    anchor_keys,
                    finalized,
                },
            );
        }
    }

    // Merged session-wide counters and the merged report live on worker 0
    // (`finish` folds workers in shard order, so placement only affects
    // report ordering, deterministically).
    if let Some(w0) = workers.first_mut() {
        w0.stats = stats;
        w0.report = report;
        w0.flips = flips;
    }
    Ok(workers)
}

impl Checker for ShardedChecker {
    fn name(&self) -> &'static str {
        self.checker_name()
    }

    fn feed(&mut self, txn: Transaction, now_ms: u64) -> Vec<CheckEvent> {
        self.receive(txn, now_ms)
    }

    /// Batched ingest: one `ShardCmd::FeedBatch` per shard instead of
    /// one channel send per routed part (see
    /// [`ShardedChecker::receive_batch`]).
    fn feed_batch(&mut self, batch: Vec<(Transaction, u64)>) -> Vec<CheckEvent> {
        self.receive_batch(batch)
    }

    fn tick(&mut self, now_ms: u64) -> Vec<CheckEvent> {
        ShardedChecker::tick(self, now_ms)
    }

    fn finish(self) -> Outcome {
        ShardedChecker::finish(self)
    }

    /// Aggregate of every worker's estimate (queried through the
    /// transport) plus the coordinator's own staged state.
    fn estimated_memory_bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<CheckEvent>()
            + self.pending.len()
                * (std::mem::size_of::<TxnId>() + std::mem::size_of::<PendingFinalize>())
            + self.transport.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{AxiomKind, DataKind, IsolationLevel, Key, TxnBuilder, Value};

    fn t(tid: u64, sid: u32, sno: u32, s: u64, c: u64) -> TxnBuilder {
        TxnBuilder::new(tid).session(sid, sno).interval(s, c)
    }

    fn sharded(n: usize) -> ShardedChecker {
        OnlineChecker::builder().shards(n).build_sharded().unwrap()
    }

    #[test]
    fn valid_history_passes_across_shards() {
        let mut a = sharded(4);
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).put(Key(2), Value(6)).build(), 0);
        a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(5)).read(Key(2), Value(6)).build(), 1);
        let out = a.finish();
        assert!(out.is_ok(), "{}", out.report);
        assert_eq!(out.txns, 2);
        assert_eq!(out.stats.received, 2);
        assert_eq!(out.stats.finalized, 2);
        assert_eq!(out.checker, "aion-si-sharded");
    }

    #[test]
    fn global_checks_report_once() {
        let mut a = sharded(4);
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(1)).put(Key(2), Value(2)).build(), 0);
        // Duplicate tid, session gap, and Eq. (1) violations are
        // coordinator-owned: exactly one report each, like the single
        // checker.
        a.receive(t(1, 1, 0, 3, 4).put(Key(3), Value(3)).build(), 0);
        a.receive(t(3, 0, 5, 9, 8).put(Key(4), Value(4)).build(), 0);
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Integrity), 2, "{}", out.report);
        assert_eq!(out.report.count(AxiomKind::Session), 1, "{}", out.report);
        assert_eq!(out.stats.received, 3);
        assert_eq!(out.stats.finalized, 1, "both malformed arrivals dropped");
    }

    #[test]
    fn cross_shard_ext_finalizations_merge_into_one_event() {
        // A transaction reading unjustifiable values on many keys: its
        // sub-footprints finalize on several shards, but exactly one
        // ExtFinalized must surface, with the summed violation count.
        let mut a = sharded(4);
        let mut txn = TxnBuilder::new(1).session(0, 0).interval(10, 11);
        for k in 0..8u64 {
            txn = txn.read(Key(k), Value(99));
        }
        a.receive(txn.build(), 0);
        let mut events = a.tick(u64::MAX);
        let finalized: Vec<_> =
            events.drain(..).filter(|e| matches!(e, CheckEvent::ExtFinalized { .. })).collect();
        assert_eq!(
            finalized,
            vec![CheckEvent::ExtFinalized { tid: TxnId(1), violations: 8 }],
            "one merged finalization with the summed violations"
        );
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Ext), 8, "{}", out.report);
    }

    #[test]
    fn settled_cross_shard_reads_produce_no_finalization_event() {
        // Reads justified at arrival stay pending until the timeout, so
        // the merged event appears on drain with zero violations.
        let mut a = sharded(2);
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).put(Key(2), Value(6)).build(), 0);
        a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(5)).read(Key(2), Value(6)).build(), 0);
        let events = a.tick(u64::MAX);
        let finalizations =
            events.iter().filter(|e| matches!(e, CheckEvent::ExtFinalized { .. })).count();
        assert_eq!(finalizations, 1, "{events:?}");
        assert!(a.finish().is_ok());
    }

    #[test]
    fn verdict_flips_stream_through() {
        let mut a = sharded(3);
        let mut events = a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(5)).build(), 0);
        // Justifying writer arrives late: the worker's flip must surface
        // on the coordinator's outbound stream (possibly on a later call).
        events.extend(a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).build(), 9));
        events.extend(a.tick(u64::MAX));
        assert!(
            events.iter().any(|e| matches!(e, CheckEvent::VerdictFlip { tid: TxnId(2), .. })),
            "{events:?}"
        );
        let out = a.finish();
        assert!(out.is_ok(), "{}", out.report);
        assert_eq!(out.flips.total_flips, 1);
    }

    #[test]
    fn events_off_runs_quiet_but_correct() {
        let mut a = OnlineChecker::builder().shards(4).events(false).build_sharded().unwrap();
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).build(), 0);
        let evs = a.receive(t(2, 1, 0, 3, 4).read(Key(1), Value(9)).build(), 0);
        assert!(evs.is_empty());
        assert!(a.tick(u64::MAX).is_empty());
        let out = a.finish();
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "report unaffected by events off");
    }

    #[test]
    fn one_shard_degenerates_to_single_checker_behaviour() {
        let mut single = OnlineChecker::new_si(DataKind::Kv);
        let mut sharded = sharded(1);
        let txns = vec![
            t(1, 0, 0, 1, 2).put(Key(1), Value(1)).build(),
            t(2, 1, 0, 3, 5).put(Key(1), Value(2)).build(),
            t(3, 2, 0, 6, 9).read(Key(1), Value(2)).put(Key(2), Value(2)).build(),
            t(4, 3, 0, 8, 10).read(Key(2), Value(1)).build(),
            t(5, 4, 0, 4, 7).read(Key(1), Value(1)).put(Key(2), Value(1)).build(),
        ];
        for txn in &txns {
            single.receive(txn.clone(), 0);
            sharded.receive(txn.clone(), 0);
        }
        let (a, b) = (single.finish(), sharded.finish());
        assert_eq!(a.report.violations, b.report.violations);
        assert_eq!(a.flips.total_flips, b.flips.total_flips);
    }

    #[test]
    fn simulated_transport_matches_threaded_verdicts() {
        let txns = [
            t(1, 0, 0, 1, 2).put(Key(1), Value(1)).put(Key(7), Value(7)).build(),
            t(2, 1, 0, 3, 5).put(Key(1), Value(2)).build(),
            t(3, 2, 0, 6, 9).read(Key(1), Value(2)).read(Key(7), Value(9)).build(),
            t(4, 3, 0, 8, 10).read(Key(7), Value(7)).build(),
        ];
        let mut threaded = sharded(3);
        let mut sim = OnlineChecker::builder()
            .shards(3)
            .build_sharded_sim(SimSchedule::pathological(42))
            .unwrap();
        for (i, txn) in txns.iter().enumerate() {
            threaded.receive(txn.clone(), i as u64);
            sim.receive(txn.clone(), i as u64);
        }
        threaded.tick(u64::MAX);
        sim.tick(u64::MAX);
        assert!(sim.sim_stats().is_some() && threaded.sim_stats().is_none());
        let (a, b) = (threaded.finish(), sim.finish());
        assert_eq!(a.report.violations, b.report.violations);
        assert_eq!(a.flips.total_flips, b.flips.total_flips);
        assert_eq!(a.stats.finalized, b.stats.finalized);
    }

    #[test]
    fn ser_mode_is_shard_aware_too() {
        let mut a =
            OnlineChecker::builder().level(IsolationLevel::Ser).shards(4).build_sharded().unwrap();
        a.receive(t(1, 0, 0, 1, 2).put(Key(1), Value(1)).build(), 0);
        a.receive(t(2, 1, 0, 3, 6).put(Key(1), Value(2)).build(), 0);
        a.receive(t(3, 2, 0, 4, 7).read(Key(1), Value(1)).build(), 0);
        let out = a.finish();
        assert_eq!(out.checker, "aion-ser-sharded");
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "{}", out.report);
        assert_eq!(out.report.count(AxiomKind::NoConflict), 0);
    }
}
