//! The coordinator↔worker delivery seam of the sharded checker.
//!
//! [`crate::sharded::ShardedChecker`] talks to its shard workers through
//! the crate-private `ShardTransport` trait instead of owning channels
//! directly:
//!
//! * `ThreadTransport` — the production implementation: one OS thread
//!   per shard, fed over crossbeam channels, exactly the pre-seam
//!   behaviour (and the same code path: the coordinator's calls compile
//!   to the same sends/recvs as before, so the abstraction costs one
//!   virtual dispatch per *message*, not per operation — pinned by the
//!   `dst-overhead` rows in `BENCH_aion.json`).
//! * `SimTransport` — a single-threaded deterministic simulator used
//!   by the `aion-dst` harness: workers run inline, delivery of commands
//!   and replies is interleaved, delayed and (for droppable clock
//!   broadcasts) dropped under a seeded [`SimSchedule`], and worker
//!   stalls are injected — all reproducible from one seed.
//!
//! Both implementations preserve the protocol contract real channels
//! give the coordinator: **per-worker FIFO** in both directions (a
//! worker processes its commands in order; a worker's replies arrive in
//! the order it sent them — in particular a shard's `Fed` reply always
//! precedes its `ExtFinalized` for the same transaction). What the
//! simulator perturbs is everything the contract does *not* promise:
//! cross-worker interleaving, delivery latency, how long a worker sits
//! on a queued command, and whether a rate-limited clock broadcast
//! arrives at all (workers self-tick before each arrival, so verdicts
//! must not depend on broadcast ticks — [`SimSchedule::drop_tick_p`]
//! exists to falsify exactly that claim).

use crate::checker::OnlineChecker;
use aion_types::rng::SplitMix64;
use aion_types::snapshot::SnapshotError;
use aion_types::{CheckEvent, Checker, Outcome, Transaction, TxnId};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Commands the coordinator sends to a shard worker.
pub(crate) enum ShardCmd {
    /// Process one (sub-)transaction at virtual time `now_ms` (the
    /// worker ticks its clock up to `now_ms` first). Shared via `Arc`
    /// so a split transaction is *not* deep-cloned on the coordinator's
    /// critical path — the last worker to unwrap it takes ownership,
    /// the others clone in parallel on their own threads.
    Feed { txn: Arc<Transaction>, now_ms: u64 },
    /// Process a run of (sub-)transactions in order, exactly as if each
    /// had been sent as its own [`ShardCmd::Feed`] — one channel send
    /// amortized over the whole run, one `Fed` reply per part. Never
    /// dropped by the simulator (only finite `Tick`s are droppable), so
    /// batching cannot change verdicts under any schedule.
    FeedBatch { parts: Vec<(Arc<Transaction>, u64)> },
    /// Advance the worker's virtual clock, firing EXT timeouts.
    Tick { now_ms: u64 },
    /// Acknowledge once every prior command has been processed.
    Flush,
    /// Serialize the worker checker's complete state and reply with the
    /// checkpoint body bytes.
    Checkpoint,
    /// Report the worker checker's estimated memory footprint on the
    /// dedicated memory channel (ThreadTransport-internal; the simulator
    /// reads its inline workers directly).
    Memory,
    /// Finish the worker's checker and reply with its outcome.
    Finish,
}

/// Replies flowing back from workers (per-worker FIFO order).
pub(crate) enum ShardReply {
    /// Events produced by a `Feed`, plus whether the fed part still
    /// holds tentative EXT verdicts on this shard (an `ExtFinalized`
    /// follows from this worker eventually iff `pending`). Only sent
    /// when events are on.
    Fed { tid: TxnId, pending: bool, events: Vec<CheckEvent> },
    /// Events produced by a `Tick`. Only sent when events are on.
    Ticked { events: Vec<CheckEvent> },
    /// Barrier acknowledgement for `Flush`.
    Flushed,
    /// Checkpoint body bytes for `Checkpoint` (or the error producing
    /// them raised).
    Checkpointed { shard: usize, body: Result<Vec<u8>, SnapshotError> },
    /// Terminal outcome for `Finish` (boxed: it dwarfs the streaming
    /// variants and is sent once per worker).
    Done { shard: usize, outcome: Box<Outcome> },
}

/// What a worker does with one command — shared verbatim by the threaded
/// worker loop and the simulator, so the simulation tests the *same*
/// worker logic production runs.
pub(crate) struct StepOutput {
    /// Replies to stage on the worker's outbound stream, in order.
    pub(crate) replies: Vec<ShardReply>,
    /// Memory estimate (for `ShardCmd::Memory` under `ThreadTransport`).
    pub(crate) mem: Option<usize>,
    /// The worker finished (its checker is consumed).
    pub(crate) done: bool,
}

/// Execute one command against a worker's checker.
pub(crate) fn worker_step(
    shard: usize,
    checker: &mut Option<OnlineChecker>,
    cmd: ShardCmd,
    events_on: bool,
) -> StepOutput {
    let mut out = StepOutput { replies: Vec::new(), mem: None, done: false };
    // A command after `Finish` (only possible if the coordinator
    // misbehaves) is ignored rather than panicking the worker thread.
    let Some(ck) = checker.as_mut() else { return out };
    match cmd {
        ShardCmd::Feed { txn, now_ms } => {
            feed_one(ck, txn, now_ms, events_on, &mut out.replies);
        }
        ShardCmd::FeedBatch { parts } => {
            for (txn, now_ms) in parts {
                feed_one(ck, txn, now_ms, events_on, &mut out.replies);
            }
        }
        ShardCmd::Tick { now_ms } => {
            let events = ck.tick(now_ms);
            if events_on {
                out.replies.push(ShardReply::Ticked { events });
            }
        }
        ShardCmd::Flush => out.replies.push(ShardReply::Flushed),
        ShardCmd::Checkpoint => {
            let mut buf = BytesMut::with_capacity(1024);
            let body = ck.write_snapshot_body(&mut buf).map(|()| buf.to_vec());
            out.replies.push(ShardReply::Checkpointed { shard, body });
        }
        ShardCmd::Memory => out.mem = Some(ck.estimated_memory_bytes()),
        ShardCmd::Finish => {
            if let Some(ck) = checker.take() {
                let outcome = Box::new(ck.finish());
                out.replies.push(ShardReply::Done { shard, outcome });
            }
            out.done = true;
        }
    }
    out
}

/// Process one arrival — the shared body of [`ShardCmd::Feed`] and each
/// element of [`ShardCmd::FeedBatch`], so batched delivery is
/// event-for-event identical to unbatched by construction.
fn feed_one(
    ck: &mut OnlineChecker,
    txn: Arc<Transaction>,
    now_ms: u64,
    events_on: bool,
    replies: &mut Vec<ShardReply>,
) {
    let tid = txn.tid;
    // Last holder takes ownership; other shards of a split transaction
    // deep-clone here, off the coordinator's critical path.
    let txn = Arc::try_unwrap(txn).unwrap_or_else(|shared| (*shared).clone());
    let mut events = ck.tick(now_ms);
    events.extend(ck.receive(txn, now_ms));
    if events_on {
        // Whether this shard still holds tentative reads for the
        // transaction — the single source of truth the coordinator's
        // ExtFinalized merge is driven by.
        let pending = ck.is_pending(tid);
        replies.push(ShardReply::Fed { tid, pending, events });
    }
}

/// How the coordinator reaches its shard workers. See the module docs;
/// both implementations guarantee per-worker FIFO in both directions.
pub(crate) trait ShardTransport: Send {
    /// Enqueue a command for `shard`.
    fn send(&mut self, shard: usize, cmd: ShardCmd);
    /// Receive the next reply, blocking (or, for the simulator, forcing
    /// schedule progress) until one is available. `None` means no worker
    /// can ever reply again.
    fn recv(&mut self) -> Option<ShardReply>;
    /// Receive the next already-available reply without blocking.
    fn try_recv(&mut self) -> Option<ShardReply>;
    /// Sum of the workers' estimated memory footprints.
    fn memory_bytes(&self) -> usize;
    /// Release worker resources, propagating any worker panic. Called
    /// once, after every `Done` reply has been received.
    fn join(&mut self);
    /// Fault/schedule counters, for transports that inject them.
    fn sim_stats(&self) -> Option<SimStats> {
        None
    }
}

// --- production: one thread per shard, crossbeam channels ----------------

/// The production transport: each shard worker runs `worker_loop` on its
/// own OS thread, exactly as before the seam existed.
pub(crate) struct ThreadTransport {
    cmd_tx: Vec<Sender<ShardCmd>>,
    reply_rx: Receiver<ShardReply>,
    /// Memory-estimate replies travel on their own channel so
    /// [`ShardTransport::memory_bytes`] (`&self`) never has to absorb
    /// staged event replies.
    mem_rx: Receiver<usize>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadTransport {
    /// Spawn one worker thread per prepared checker (fresh sessions and
    /// both restore paths share this).
    pub(crate) fn spawn(checkers: Vec<OnlineChecker>) -> ThreadTransport {
        let (reply_tx, reply_rx) = unbounded::<ShardReply>();
        let (mem_tx, mem_rx) = unbounded::<usize>();
        let mut cmd_tx = Vec::with_capacity(checkers.len());
        let mut handles = Vec::with_capacity(checkers.len());
        for (shard, checker) in checkers.into_iter().enumerate() {
            let (tx, rx) = unbounded::<ShardCmd>();
            cmd_tx.push(tx);
            let events_on = checker.config().events;
            let reply_tx = reply_tx.clone();
            let mem_tx = mem_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("aion-shard-{shard}"))
                    .spawn(move || worker_loop(shard, checker, rx, reply_tx, mem_tx, events_on))
                    // aion-lint: allow(panic-freedom) — OS thread-spawn
                    // failure is unrecoverable resource exhaustion; there
                    // is no session to degrade to
                    .expect("spawn shard worker"),
            );
        }
        ThreadTransport { cmd_tx, reply_rx, mem_rx, handles }
    }
}

impl ShardTransport for ThreadTransport {
    fn send(&mut self, shard: usize, cmd: ShardCmd) {
        // A worker can only be gone if it panicked; surface that at
        // finish/join instead of here.
        if let Some(tx) = self.cmd_tx.get(shard) {
            let _ = tx.send(cmd);
        }
    }

    fn recv(&mut self) -> Option<ShardReply> {
        self.reply_rx.recv().ok()
    }

    fn try_recv(&mut self) -> Option<ShardReply> {
        self.reply_rx.try_recv().ok()
    }

    fn memory_bytes(&self) -> usize {
        let mut expected = 0usize;
        for tx in &self.cmd_tx {
            if tx.send(ShardCmd::Memory).is_ok() {
                expected += 1;
            }
        }
        let mut total = 0usize;
        for _ in 0..expected {
            match self.mem_rx.recv() {
                Ok(bytes) => total += bytes,
                Err(_) => break,
            }
        }
        total
    }

    fn join(&mut self) {
        for handle in self.handles.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// A shard worker: drains commands in order, catching its clock up
/// before each arrival so finalization verdicts match the single
/// checker's, and replies with events (when on) plus the pending flag
/// the coordinator's `ExtFinalized` merge needs.
fn worker_loop(
    shard: usize,
    checker: OnlineChecker,
    rx: Receiver<ShardCmd>,
    tx: Sender<ShardReply>,
    mem_tx: Sender<usize>,
    events_on: bool,
) {
    let mut checker = Some(checker);
    while let Ok(cmd) = rx.recv() {
        let out = worker_step(shard, &mut checker, cmd, events_on);
        for reply in out.replies {
            let _ = tx.send(reply);
        }
        if let Some(bytes) = out.mem {
            let _ = mem_tx.send(bytes);
        }
        if out.done {
            return;
        }
    }
}

// --- simulation: inline workers under a seeded adversarial schedule ------

/// Seeded schedule parameters for the simulated transport (the `aion-dst`
/// deterministic simulator). All probabilities are per micro-step draw;
/// see `docs/testing.md` for the schedule taxonomy.
#[derive(Clone, Copy, Debug)]
pub struct SimSchedule {
    /// Seed for every scheduling/fault decision; two runs with the same
    /// seed and the same command sequence take identical schedules.
    pub seed: u64,
    /// Probability that a selected worker actually processes its queued
    /// command (lower = commands sit in mailboxes longer).
    pub process_p: f64,
    /// Probability that a selected staged reply is actually delivered to
    /// the coordinator (lower = replies lag further behind processing).
    pub deliver_p: f64,
    /// Probability of dropping a *finite* clock broadcast
    /// (`ShardCmd::Tick`) outright. Legal by design — workers self-tick
    /// before each arrival and the end-of-stream drain (`now == MAX`)
    /// is never dropped — so verdicts must survive any value here.
    pub drop_tick_p: f64,
    /// Probability that a selected worker enters a stall instead of
    /// processing (models a descheduled/slow worker thread).
    pub stall_p: f64,
    /// Micro-steps a stalled worker stays unresponsive.
    pub stall_len: u32,
    /// Scheduler micro-steps run per coordinator interaction (`send` /
    /// `try_recv`); more steps keep queues shorter, fewer steps build
    /// deeper backlogs.
    pub steps_per_call: u32,
}

impl SimSchedule {
    /// A mildly adversarial schedule: most work proceeds promptly, with
    /// occasional delays, drops and short stalls.
    pub fn random(seed: u64) -> SimSchedule {
        SimSchedule {
            seed,
            process_p: 0.7,
            deliver_p: 0.7,
            drop_tick_p: 0.2,
            stall_p: 0.05,
            stall_len: 16,
            steps_per_call: 8,
        }
    }

    /// A pathological schedule: workers mostly sit on their mailboxes,
    /// replies crawl back, most clock broadcasts vanish, and stalls are
    /// long — maximizing queue depth and reordering across workers.
    pub fn pathological(seed: u64) -> SimSchedule {
        SimSchedule {
            seed,
            process_p: 0.25,
            deliver_p: 0.15,
            drop_tick_p: 0.8,
            stall_p: 0.25,
            stall_len: 64,
            steps_per_call: 4,
        }
    }
}

/// Counters of what a simulated-transport schedule actually did — useful
/// for asserting a run was genuinely adversarial, and for debugging
/// failing seeds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Commands processed by workers.
    pub processed: u64,
    /// Replies delivered to the coordinator.
    pub delivered: u64,
    /// Finite clock broadcasts dropped before reaching a mailbox.
    pub dropped_ticks: u64,
    /// Stalls entered by workers.
    pub stalls: u64,
    /// Micro-steps where the selected unit was deferred by a gate or a
    /// stall (work existed but was deliberately delayed).
    pub deferred: u64,
}

struct SimWorker {
    checker: Option<OnlineChecker>,
    events_on: bool,
    mailbox: VecDeque<ShardCmd>,
    outbox: VecDeque<ShardReply>,
    stalled: u32,
}

/// Single-threaded deterministic transport: shard workers run inline,
/// scheduled by a seeded adversarial interleaver (see the module docs
/// for exactly which reorderings are legal).
pub(crate) struct SimTransport {
    workers: Vec<SimWorker>,
    /// Replies delivered to the coordinator, in delivery order.
    inbox: VecDeque<ShardReply>,
    rng: SplitMix64,
    sched: SimSchedule,
    stats: SimStats,
}

/// One schedulable unit of work.
#[derive(Clone, Copy)]
enum Unit {
    /// Worker processes the head of its mailbox.
    Process(usize),
    /// The head of a worker's outbox is delivered to the coordinator.
    Deliver(usize),
}

impl SimTransport {
    pub(crate) fn new(checkers: Vec<OnlineChecker>, sched: SimSchedule) -> SimTransport {
        let workers = checkers
            .into_iter()
            .map(|checker| SimWorker {
                events_on: checker.config().events,
                checker: Some(checker),
                mailbox: VecDeque::new(),
                outbox: VecDeque::new(),
                stalled: 0,
            })
            .collect();
        SimTransport {
            workers,
            inbox: VecDeque::new(),
            rng: SplitMix64::new(sched.seed ^ 0x51ED_5EED_u64),
            sched,
            stats: SimStats::default(),
        }
    }

    fn units(&self) -> Vec<Unit> {
        let mut units = Vec::with_capacity(self.workers.len() * 2);
        for (i, w) in self.workers.iter().enumerate() {
            if !w.mailbox.is_empty() {
                units.push(Unit::Process(i));
            }
            if !w.outbox.is_empty() {
                units.push(Unit::Deliver(i));
            }
        }
        units
    }

    /// Execute one unit unconditionally (no gates, no stalls). A unit
    /// whose work disappeared (impossible while `units()` and `run_unit`
    /// stay paired) is a no-op rather than a panic.
    fn run_unit(&mut self, unit: Unit) {
        match unit {
            Unit::Process(i) => {
                let Some(w) = self.workers.get_mut(i) else { return };
                let Some(cmd) = w.mailbox.pop_front() else { return };
                let out = worker_step(i, &mut w.checker, cmd, w.events_on);
                w.outbox.extend(out.replies);
                self.stats.processed += 1;
            }
            Unit::Deliver(i) => {
                let Some(reply) = self.workers.get_mut(i).and_then(|w| w.outbox.pop_front()) else {
                    return;
                };
                self.inbox.push_back(reply);
                self.stats.delivered += 1;
            }
        }
    }

    /// Run `steps_per_call` gated micro-steps: pick a random ready unit,
    /// then let the schedule decide whether it actually runs.
    fn step_some(&mut self) {
        for _ in 0..self.sched.steps_per_call {
            let units = self.units();
            if units.is_empty() {
                return;
            }
            let Some(&unit) = units.get(self.rng.below(units.len() as u64) as usize) else {
                return;
            };
            match unit {
                Unit::Process(i) => {
                    let Some(w) = self.workers.get_mut(i) else { continue };
                    if w.stalled > 0 {
                        w.stalled -= 1;
                        self.stats.deferred += 1;
                    } else if self.rng.chance(self.sched.stall_p) {
                        w.stalled = self.sched.stall_len;
                        self.stats.stalls += 1;
                        self.stats.deferred += 1;
                    } else if self.rng.chance(self.sched.process_p) {
                        self.run_unit(unit);
                    } else {
                        self.stats.deferred += 1;
                    }
                }
                Unit::Deliver(_) => {
                    if self.rng.chance(self.sched.deliver_p) {
                        self.run_unit(unit);
                    } else {
                        self.stats.deferred += 1;
                    }
                }
            }
        }
    }

    /// Force one unit of progress, ignoring gates and stalls (used when
    /// the coordinator blocks on a reply): deliveries first, so staged
    /// replies reach the coordinator before more work piles up.
    fn force_one(&mut self) -> bool {
        let units = self.units();
        if units.is_empty() {
            return false;
        }
        let deliveries: Vec<Unit> =
            units.iter().copied().filter(|u| matches!(u, Unit::Deliver(_))).collect();
        let pool = if deliveries.is_empty() { units } else { deliveries };
        let Some(&unit) = pool.get(self.rng.below(pool.len() as u64) as usize) else {
            return false;
        };
        self.run_unit(unit);
        true
    }
}

impl ShardTransport for SimTransport {
    fn send(&mut self, shard: usize, cmd: ShardCmd) {
        // Finite clock broadcasts are the only droppable message: the
        // checker's own documentation says they affect event promptness,
        // never verdicts. The end-of-stream drain (MAX) and every other
        // command must arrive.
        if let ShardCmd::Tick { now_ms } = cmd {
            if now_ms != u64::MAX && self.rng.chance(self.sched.drop_tick_p) {
                self.stats.dropped_ticks += 1;
                return;
            }
        }
        if let Some(w) = self.workers.get_mut(shard) {
            w.mailbox.push_back(cmd);
        }
        self.step_some();
    }

    fn recv(&mut self) -> Option<ShardReply> {
        loop {
            if let Some(reply) = self.inbox.pop_front() {
                return Some(reply);
            }
            if !self.force_one() {
                return None;
            }
        }
    }

    fn try_recv(&mut self) -> Option<ShardReply> {
        self.step_some();
        self.inbox.pop_front()
    }

    fn memory_bytes(&self) -> usize {
        // Queued backlog is deliberately not counted: the estimate
        // mirrors the threaded transport's (workers' checker state), so
        // admission-control behaviour matches production. Reading it
        // must not consume schedule randomness.
        self.workers
            .iter()
            .map(|w| w.checker.as_ref().map_or(0, Checker::estimated_memory_bytes))
            .sum()
    }

    fn join(&mut self) {}

    fn sim_stats(&self) -> Option<SimStats> {
        Some(self.stats)
    }
}
