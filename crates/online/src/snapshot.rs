//! Serializable checker state: checkpoint and restore of in-flight
//! online checking sessions.
//!
//! The paper's checkers are *online* — they outlive any single history
//! file — which means a deployable monitor ([`aion-serve`]) must survive
//! crashes, operator restarts and shard rebalancing without losing the
//! tentative verdict state accumulated mid-stream. This module extends
//! the spill codec (which already persists part of the state, see
//! [`crate::spill`]) into a *complete* snapshot: every field of an
//! [`OnlineChecker`] is serialized under the versioned envelope of
//! [`aion_types::snapshot`] and restored exactly.
//!
//! The differential guarantee (pinned by `tests/snapshot_differential.rs`):
//! checkpointing between two arrivals and resuming from the snapshot
//! produces **byte-identical events and outcomes** to the uninterrupted
//! run. Two design points make that hold:
//!
//! * The `readers`/`writers` indexes and the `ongoing` interval map are
//!   serialized **explicitly** rather than rebuilt from the resident
//!   transactions. Rebuilding would resurrect entries that GC pruned and
//!   invent entries for spill-reloaded transactions (which carry no read
//!   state), changing step-③ re-check cascades and the `reevaluations`
//!   counter.
//! * Everything whose in-memory iteration order is unspecified (hash
//!   maps, the deadline heap, the frontier) is written in a canonical
//!   sorted order, so the snapshot bytes themselves are deterministic;
//!   the structures are rebuilt element-wise on restore, which preserves
//!   observable behaviour because each is consulted through
//!   order-independent queries.
//!
//! [`aion-serve`]: ../../aion_serve/index.html

use crate::checker::{
    AionConfig, ConfigError, GlobalChecks, OnlineChecker, OnlineGcPolicy, OnlineTxn, ReadState,
};
use crate::index::{OngoingWriter, ReadRef};
use crate::spill::{decode_segment, SegmentExport};
use crate::stats::FlipTracker;
use aion_types::codec::{self, get_varint, put_varint, CodecError};
use aion_types::snapshot::{
    get_bool, get_check_event, get_opt_varint, get_report, get_snapshot_header_versioned,
    get_stats, get_string, put_bool, put_check_event, put_opt_varint, put_report,
    put_snapshot_header, put_stats, put_string, SnapshotError, SNAPSHOT_KIND_SINGLE,
};
use aion_types::{
    CheckEvent, DataKind, EventKey, EventKind, IsolationLevel, Key, LevelPolicy, Mutation,
    SessionId, Timestamp, TxnId,
};
use bytes::{Buf, BufMut, BytesMut};
use std::cmp::Reverse;
use std::path::{Path, PathBuf};

// --- primitive helpers ----------------------------------------------------

fn get_u8(buf: &mut impl Buf) -> Result<u8, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_u8())
}

fn put_event_key(buf: &mut impl BufMut, e: EventKey) {
    put_varint(buf, e.ts.0);
    buf.put_u8(match e.kind {
        EventKind::Start => 0,
        EventKind::Commit => 1,
    });
    put_varint(buf, e.tid.0);
}

fn get_event_key(buf: &mut impl Buf) -> Result<EventKey, CodecError> {
    let ts = Timestamp(get_varint(buf)?);
    let kind = match get_u8(buf)? {
        0 => EventKind::Start,
        1 => EventKind::Commit,
        t => return Err(CodecError::BadTag(t)),
    };
    let tid = TxnId(get_varint(buf)?);
    Ok(EventKey { ts, kind, tid })
}

fn put_mutation(buf: &mut impl BufMut, m: Mutation) {
    match m {
        Mutation::Put(v) => {
            buf.put_u8(0);
            put_varint(buf, v.0);
        }
        Mutation::Append(v) => {
            buf.put_u8(1);
            put_varint(buf, v.0);
        }
    }
}

fn get_mutation(buf: &mut impl Buf) -> Result<Mutation, CodecError> {
    match get_u8(buf)? {
        0 => Ok(Mutation::Put(aion_types::Value(get_varint(buf)?))),
        1 => Ok(Mutation::Append(aion_types::Value(get_varint(buf)?))),
        t => Err(CodecError::BadTag(t)),
    }
}

fn put_level(buf: &mut impl BufMut, level: IsolationLevel) {
    buf.put_u8(codec::level_to_byte(Some(level)));
}

fn get_level(buf: &mut impl Buf) -> Result<IsolationLevel, CodecError> {
    match codec::level_from_byte(get_u8(buf)?)? {
        Some(l) => Ok(l),
        None => Err(CodecError::BadLevel(0)),
    }
}

// --- configuration --------------------------------------------------------

pub(crate) fn put_config(buf: &mut impl BufMut, cfg: &AionConfig) {
    buf.put_u8(match cfg.kind {
        DataKind::Kv => 0,
        DataKind::List => 1,
    });
    match &cfg.levels {
        LevelPolicy::Uniform(l) => {
            buf.put_u8(0);
            put_level(buf, *l);
        }
        LevelPolicy::PerSession { map, default } => {
            buf.put_u8(1);
            let mut pairs: Vec<(SessionId, IsolationLevel)> =
                map.iter().map(|(s, l)| (*s, *l)).collect();
            pairs.sort_unstable_by_key(|(s, _)| s.0);
            put_varint(buf, pairs.len() as u64);
            for (s, l) in pairs {
                put_varint(buf, u64::from(s.0));
                put_level(buf, l);
            }
            put_level(buf, *default);
        }
        LevelPolicy::PerTxn { default } => {
            buf.put_u8(2);
            put_level(buf, *default);
        }
        // `LevelPolicy` is non_exhaustive; a variant this codec does not
        // know cannot be checkpointed faithfully, and silently degrading
        // it would break the restore byte-identity guarantee.
        other => unreachable!("checkpoint codec does not know LevelPolicy {other:?}"),
    }
    put_varint(buf, cfg.ext_timeout_ms);
    match cfg.gc {
        OnlineGcPolicy::None => buf.put_u8(0),
        OnlineGcPolicy::Checking { max_txns } => {
            buf.put_u8(1);
            put_varint(buf, max_txns as u64);
        }
        OnlineGcPolicy::Full { max_txns } => {
            buf.put_u8(2);
            put_varint(buf, max_txns as u64);
        }
    }
    put_bool(buf, cfg.track_flip_details);
    put_bool(buf, cfg.naive_recheck);
    match &cfg.spill_path {
        None => put_bool(buf, false),
        Some(p) => {
            put_bool(buf, true);
            put_string(buf, &p.to_string_lossy());
        }
    }
    put_bool(buf, cfg.events);
    put_varint(buf, cfg.shard.shards as u64);
    put_varint(buf, cfg.shard.tick_broadcast_ms);
    put_bool(buf, cfg.coordinated);
    match cfg.shard_filter {
        None => put_bool(buf, false),
        Some((mine, shards)) => {
            put_bool(buf, true);
            put_varint(buf, mine as u64);
            put_varint(buf, shards as u64);
        }
    }
}

// Sequential assignment keeps the decode in wire-field order, mirroring
// `put_config` line for line.
#[allow(clippy::field_reassign_with_default)]
pub(crate) fn get_config(buf: &mut impl Buf) -> Result<AionConfig, CodecError> {
    let mut cfg = AionConfig::default();
    cfg.kind = match get_u8(buf)? {
        0 => DataKind::Kv,
        1 => DataKind::List,
        t => return Err(CodecError::BadTag(t)),
    };
    cfg.levels = match get_u8(buf)? {
        0 => LevelPolicy::Uniform(get_level(buf)?),
        1 => {
            let n = get_varint(buf)? as usize;
            let mut map = aion_types::FxHashMap::default();
            for _ in 0..n {
                let sid = SessionId(get_varint(buf)? as u32);
                map.insert(sid, get_level(buf)?);
            }
            LevelPolicy::PerSession { map, default: get_level(buf)? }
        }
        2 => LevelPolicy::PerTxn { default: get_level(buf)? },
        t => return Err(CodecError::BadTag(t)),
    };
    cfg.ext_timeout_ms = get_varint(buf)?;
    cfg.gc = match get_u8(buf)? {
        0 => OnlineGcPolicy::None,
        1 => OnlineGcPolicy::Checking { max_txns: get_varint(buf)? as usize },
        2 => OnlineGcPolicy::Full { max_txns: get_varint(buf)? as usize },
        t => return Err(CodecError::BadTag(t)),
    };
    cfg.track_flip_details = get_bool(buf)?;
    cfg.naive_recheck = get_bool(buf)?;
    cfg.spill_path = if get_bool(buf)? { Some(PathBuf::from(get_string(buf)?)) } else { None };
    cfg.events = get_bool(buf)?;
    cfg.shard.shards = get_varint(buf)? as usize;
    cfg.shard.tick_broadcast_ms = get_varint(buf)?;
    cfg.coordinated = get_bool(buf)?;
    cfg.shard_filter = if get_bool(buf)? {
        Some((get_varint(buf)? as usize, get_varint(buf)? as usize))
    } else {
        None
    };
    Ok(cfg)
}

// --- global checks --------------------------------------------------------

pub(crate) fn put_globals(buf: &mut impl BufMut, g: &GlobalChecks) {
    let mut tids: Vec<u64> = g.all_tids.iter().map(|t| t.0).collect();
    tids.sort_unstable();
    put_varint(buf, tids.len() as u64);
    for t in tids {
        put_varint(buf, t);
    }
    let mut owners: Vec<(u64, u64)> = g.ts_owner.iter().map(|(ts, t)| (ts.0, t.0)).collect();
    owners.sort_unstable();
    put_varint(buf, owners.len() as u64);
    for (ts, t) in owners {
        put_varint(buf, ts);
        put_varint(buf, t);
    }
    let mut snos: Vec<(u32, u32)> = g.next_sno.iter().map(|(s, n)| (s.0, *n)).collect();
    snos.sort_unstable();
    put_varint(buf, snos.len() as u64);
    for (s, n) in snos {
        put_varint(buf, u64::from(s));
        put_varint(buf, u64::from(n));
    }
    let mut cts: Vec<(u32, u64)> = g.last_cts.iter().map(|(s, t)| (s.0, t.0)).collect();
    cts.sort_unstable();
    put_varint(buf, cts.len() as u64);
    for (s, t) in cts {
        put_varint(buf, u64::from(s));
        put_varint(buf, t);
    }
}

pub(crate) fn get_globals(buf: &mut impl Buf) -> Result<GlobalChecks, CodecError> {
    let mut g = GlobalChecks::default();
    for _ in 0..get_varint(buf)? {
        g.all_tids.insert(TxnId(get_varint(buf)?));
    }
    for _ in 0..get_varint(buf)? {
        let ts = Timestamp(get_varint(buf)?);
        g.ts_owner.insert(ts, TxnId(get_varint(buf)?));
    }
    for _ in 0..get_varint(buf)? {
        let sid = SessionId(get_varint(buf)? as u32);
        g.next_sno.insert(sid, get_varint(buf)? as u32);
    }
    for _ in 0..get_varint(buf)? {
        let sid = SessionId(get_varint(buf)? as u32);
        g.last_cts.insert(sid, Timestamp(get_varint(buf)?));
    }
    Ok(g)
}

// --- per-transaction state ------------------------------------------------

fn put_read_state(buf: &mut impl BufMut, r: &ReadState) {
    put_varint(buf, u64::from(r.op_index));
    put_varint(buf, r.key.0);
    codec::put_snapshot(buf, &r.observed);
    put_varint(buf, r.muts_before.len() as u64);
    for m in &r.muts_before {
        put_mutation(buf, *m);
    }
    put_bool(buf, r.ok);
    put_bool(buf, r.settled);
    put_opt_varint(buf, r.wrong_since);
}

fn get_read_state(buf: &mut impl Buf) -> Result<ReadState, CodecError> {
    let op_index = get_varint(buf)? as u32;
    let key = Key(get_varint(buf)?);
    let observed = codec::get_snapshot(buf)?;
    let n = get_varint(buf)? as usize;
    let mut muts_before = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        muts_before.push(get_mutation(buf)?);
    }
    Ok(ReadState {
        op_index,
        key,
        observed,
        muts_before,
        ok: get_bool(buf)?,
        settled: get_bool(buf)?,
        wrong_since: get_opt_varint(buf)?,
    })
}

fn put_online_txn(buf: &mut impl BufMut, t: &OnlineTxn) {
    codec::put_txn_ext(buf, &t.txn);
    put_level(buf, t.level);
    put_varint(buf, t.write_set.len() as u64);
    for (k, s) in &t.write_set {
        put_varint(buf, k.0);
        codec::put_snapshot(buf, s);
    }
    put_varint(buf, t.reads.len() as u64);
    for r in &t.reads {
        put_read_state(buf, r);
    }
    put_varint(buf, t.anchor_keys.len() as u64);
    for k in &t.anchor_keys {
        put_varint(buf, k.0);
    }
    put_bool(buf, t.finalized);
}

fn get_online_txn(buf: &mut impl Buf) -> Result<OnlineTxn, CodecError> {
    let txn = codec::get_txn_ext(buf)?;
    let level = get_level(buf)?;
    let n = get_varint(buf)? as usize;
    let mut write_set = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let k = Key(get_varint(buf)?);
        write_set.push((k, codec::get_snapshot(buf)?));
    }
    let n = get_varint(buf)? as usize;
    let mut reads = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        reads.push(get_read_state(buf)?);
    }
    let n = get_varint(buf)? as usize;
    let mut anchor_keys = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        anchor_keys.push(Key(get_varint(buf)?));
    }
    Ok(OnlineTxn { txn, level, write_set, reads, anchor_keys, finalized: get_bool(buf)? })
}

// --- event lists ----------------------------------------------------------

pub(crate) fn put_events(buf: &mut impl BufMut, events: &[CheckEvent]) {
    put_varint(buf, events.len() as u64);
    for e in events {
        put_check_event(buf, e);
    }
}

pub(crate) fn get_events(buf: &mut impl Buf) -> Result<Vec<CheckEvent>, CodecError> {
    let n = get_varint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_check_event(buf)?);
    }
    Ok(out)
}

// --- flip tracker ---------------------------------------------------------

fn put_flips(buf: &mut impl BufMut, f: &FlipTracker) {
    put_bool(buf, f.detail);
    put_varint(buf, f.total_flips);
    let mut pairs: Vec<((u64, u64), u32)> =
        f.flips_per_pair.iter().map(|((t, k), n)| ((t.0, k.0), *n)).collect();
    pairs.sort_unstable();
    put_varint(buf, pairs.len() as u64);
    for ((t, k), n) in pairs {
        put_varint(buf, t);
        put_varint(buf, k);
        put_varint(buf, u64::from(n));
    }
    let mut tids: Vec<u64> = f.txns_with_flips.iter().map(|t| t.0).collect();
    tids.sort_unstable();
    put_varint(buf, tids.len() as u64);
    for t in tids {
        put_varint(buf, t);
    }
    put_varint(buf, f.rectify_ms.len() as u64);
    for &ms in &f.rectify_ms {
        put_varint(buf, ms);
    }
}

fn get_flips(buf: &mut impl Buf) -> Result<FlipTracker, CodecError> {
    let mut f = FlipTracker::new(get_bool(buf)?);
    f.total_flips = get_varint(buf)?;
    for _ in 0..get_varint(buf)? {
        let t = TxnId(get_varint(buf)?);
        let k = Key(get_varint(buf)?);
        f.flips_per_pair.insert((t, k), get_varint(buf)? as u32);
    }
    for _ in 0..get_varint(buf)? {
        f.txns_with_flips.insert(TxnId(get_varint(buf)?));
    }
    let n = get_varint(buf)? as usize;
    f.rectify_ms.reserve(n.min(1024));
    for _ in 0..n {
        f.rectify_ms.push(get_varint(buf)?);
    }
    Ok(f)
}

// --- the single-checker body ---------------------------------------------

fn config_error(e: ConfigError) -> SnapshotError {
    match e {
        ConfigError::SpillFile { source, .. } => SnapshotError::Io(source),
    }
}

impl OnlineChecker {
    /// Serialize the complete checker state to checkpoint bytes
    /// (envelope + body). `&mut self`: the disk spill backend re-reads
    /// its segment bytes; no observable state changes.
    ///
    /// Call between arrivals (i.e. not from inside a `feed`/`tick`
    /// callback): that is the granularity at which snapshot+resume is
    /// byte-identical to an uninterrupted run.
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let mut buf = BytesMut::with_capacity(4096);
        put_snapshot_header(&mut buf, SNAPSHOT_KIND_SINGLE);
        self.write_snapshot_body(&mut buf)?;
        Ok(buf.to_vec())
    }

    /// [`checkpoint`](Self::checkpoint) straight to a file.
    pub fn checkpoint_to(&mut self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let bytes = self.checkpoint()?;
        std::fs::write(path, bytes)?;
        Ok(())
    }

    /// Restore a checker from [`checkpoint`](Self::checkpoint) bytes.
    ///
    /// The embedded configuration is used as-is; in particular a
    /// configured [`AionConfig::spill_path`] is **re-created (truncated)**
    /// and the checkpoint's spill segments are written back into it — do
    /// not restore over the spill file of a still-live session. Use
    /// [`restore_into`](Self::restore_into) to redirect the spill file.
    pub fn restore(bytes: &[u8]) -> Result<OnlineChecker, SnapshotError> {
        Self::restore_inner(bytes, None)
    }

    /// [`restore`](Self::restore), overriding the configured spill path
    /// (`None` switches to in-memory spilling). The checkpoint's spill
    /// segments are imported into the new location either way.
    pub fn restore_into(
        bytes: &[u8],
        spill_path: Option<PathBuf>,
    ) -> Result<OnlineChecker, SnapshotError> {
        Self::restore_inner(bytes, Some(spill_path))
    }

    /// Restore from a checkpoint file written by
    /// [`checkpoint_to`](Self::checkpoint_to).
    pub fn restore_from(path: impl AsRef<Path>) -> Result<OnlineChecker, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::restore(&bytes)
    }

    fn restore_inner(
        bytes: &[u8],
        spill_override: Option<Option<PathBuf>>,
    ) -> Result<OnlineChecker, SnapshotError> {
        let mut slice = bytes;
        let (version, kind) = get_snapshot_header_versioned(&mut slice)?;
        if kind != SNAPSHOT_KIND_SINGLE {
            return Err(SnapshotError::WrongKind { expected: SNAPSHOT_KIND_SINGLE, found: kind });
        }
        let ck = Self::read_snapshot_body(&mut slice, version, spill_override)?;
        if !slice.is_empty() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after checkpoint body",
                slice.len()
            )));
        }
        Ok(ck)
    }

    /// Body writer shared by the single and the sharded checkpoint (the
    /// sharded one embeds a full single-checker snapshot per worker).
    pub(crate) fn write_snapshot_body(&mut self, buf: &mut BytesMut) -> Result<(), SnapshotError> {
        put_config(buf, &self.cfg);
        put_globals(buf, &self.globals);

        let mut tids: Vec<TxnId> = self.txns.keys().copied().collect();
        tids.sort_unstable();
        put_varint(buf, tids.len() as u64);
        for tid in tids {
            put_online_txn(buf, &self.txns[&tid]);
        }

        let mut versions: Vec<(Key, EventKey, &aion_types::Snapshot)> =
            self.frontier.iter().collect();
        versions.sort_unstable_by_key(|(k, e, _)| (k.0, *e));
        put_varint(buf, versions.len() as u64);
        for (k, e, s) in versions {
            put_varint(buf, k.0);
            put_event_key(buf, e);
            codec::put_snapshot(buf, s);
        }

        // Readers/writers: per-(key, event) item vectors, serialized in
        // their exact in-memory order (insertion order matters for the
        // step-③ sweep; see the module docs).
        let mut reader_chains: Vec<(Key, &std::collections::BTreeMap<EventKey, Vec<ReadRef>>)> =
            self.readers.keys.iter().map(|(k, c)| (*k, c)).collect();
        reader_chains.sort_unstable_by_key(|(k, _)| k.0);
        put_varint(buf, reader_chains.iter().map(|(_, c)| c.len() as u64).sum());
        for (key, chain) in reader_chains {
            for (event, items) in chain {
                put_varint(buf, key.0);
                put_event_key(buf, *event);
                put_varint(buf, items.len() as u64);
                for r in items {
                    put_varint(buf, r.tid.0);
                    put_varint(buf, u64::from(r.read_idx));
                }
            }
        }

        let mut writer_chains: Vec<(Key, &std::collections::BTreeMap<EventKey, Vec<TxnId>>)> =
            self.writers.keys.iter().map(|(k, c)| (*k, c)).collect();
        writer_chains.sort_unstable_by_key(|(k, _)| k.0);
        put_varint(buf, writer_chains.iter().map(|(_, c)| c.len() as u64).sum());
        for (key, chain) in writer_chains {
            for (event, items) in chain {
                put_varint(buf, key.0);
                put_event_key(buf, *event);
                put_varint(buf, items.len() as u64);
                for t in items {
                    put_varint(buf, t.0);
                }
            }
        }

        let mut intervals: Vec<(Key, EventKey, &Vec<OngoingWriter>)> =
            self.ongoing.map.iter().collect();
        intervals.sort_unstable_by_key(|(k, e, _)| (k.0, *e));
        put_varint(buf, intervals.len() as u64);
        for (k, e, writers) in intervals {
            put_varint(buf, k.0);
            put_event_key(buf, e);
            put_varint(buf, writers.len() as u64);
            for w in writers {
                put_varint(buf, w.tid.0);
                put_bool(buf, w.noconflict);
            }
        }

        let mut deadlines: Vec<(u64, u64)> =
            self.deadlines.iter().map(|Reverse((d, t))| (*d, t.0)).collect();
        deadlines.sort_unstable();
        put_varint(buf, deadlines.len() as u64);
        for (d, t) in deadlines {
            put_varint(buf, d);
            put_varint(buf, t);
        }

        put_varint(buf, self.triggers.len() as u64);
        for (k, e) in &self.triggers {
            put_varint(buf, k.0);
            put_event_key(buf, *e);
        }

        put_opt_varint(buf, self.gc_horizon_ts.map(|t| t.0));
        put_varint(buf, self.now_ms);
        put_report(buf, &self.report);
        put_flips(buf, &self.flips);
        put_stats(buf, &self.stats);
        put_events(buf, &self.events);

        let segments = self.spill.export_segments()?;
        put_varint(buf, segments.len() as u64);
        for seg in segments {
            put_varint(buf, seg.min_ts.0);
            put_varint(buf, seg.max_ts.0);
            put_varint(buf, seg.txns as u64);
            put_bool(buf, seg.loaded);
            put_varint(buf, seg.bytes.len() as u64);
            buf.put_slice(&seg.bytes);
        }

        // v3: committed-membership summaries (already canonically sorted)
        // and the reload floor.
        let entries = self.membership.sorted_entries();
        put_varint(buf, entries.len() as u64);
        for (k, e, s) in entries {
            put_varint(buf, k.0);
            put_event_key(buf, e);
            codec::put_snapshot(buf, s);
        }
        put_varint(buf, self.reload_floor.0);
        Ok(())
    }

    /// Body reader shared by the single and the sharded restore.
    /// `version` is the envelope schema version (already validated to be
    /// in the supported range); v2 bodies end at the spill segments.
    pub(crate) fn read_snapshot_body(
        buf: &mut &[u8],
        version: u8,
        spill_override: Option<Option<PathBuf>>,
    ) -> Result<OnlineChecker, SnapshotError> {
        let mut cfg = get_config(buf)?;
        if let Some(path) = spill_override {
            cfg.spill_path = path;
        }
        let mut ck = OnlineChecker::try_new(cfg).map_err(config_error)?;
        ck.globals = get_globals(buf)?;

        for _ in 0..get_varint(buf)? {
            let t = get_online_txn(buf)?;
            ck.txns.insert(t.txn.tid, t);
        }

        for _ in 0..get_varint(buf)? {
            let k = Key(get_varint(buf)?);
            let e = get_event_key(buf)?;
            ck.frontier.insert(k, e, codec::get_snapshot(buf)?);
        }

        for _ in 0..get_varint(buf)? {
            let k = Key(get_varint(buf)?);
            let e = get_event_key(buf)?;
            for _ in 0..get_varint(buf)? {
                let tid = TxnId(get_varint(buf)?);
                let read_idx = get_varint(buf)? as u32;
                ck.readers.insert(k, e, ReadRef { tid, read_idx });
            }
        }

        for _ in 0..get_varint(buf)? {
            let k = Key(get_varint(buf)?);
            let e = get_event_key(buf)?;
            for _ in 0..get_varint(buf)? {
                ck.writers.insert(k, e, TxnId(get_varint(buf)?));
            }
        }

        for _ in 0..get_varint(buf)? {
            let k = Key(get_varint(buf)?);
            let e = get_event_key(buf)?;
            let n = get_varint(buf)? as usize;
            let mut writers = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let tid = TxnId(get_varint(buf)?);
                writers.push(OngoingWriter { tid, noconflict: get_bool(buf)? });
            }
            ck.ongoing.map.insert(k, e, writers);
        }

        for _ in 0..get_varint(buf)? {
            let d = get_varint(buf)?;
            ck.deadlines.push(Reverse((d, TxnId(get_varint(buf)?))));
        }

        for _ in 0..get_varint(buf)? {
            let k = Key(get_varint(buf)?);
            ck.triggers.push_back((k, get_event_key(buf)?));
        }

        ck.gc_horizon_ts = get_opt_varint(buf)?.map(Timestamp);
        ck.now_ms = get_varint(buf)?;
        ck.report = get_report(buf)?;
        ck.flips = get_flips(buf)?;
        ck.stats = get_stats(buf)?;
        ck.events = get_events(buf)?;

        let nsegs = get_varint(buf)? as usize;
        let mut segments = Vec::with_capacity(nsegs.min(1024));
        for _ in 0..nsegs {
            let min_ts = Timestamp(get_varint(buf)?);
            let max_ts = Timestamp(get_varint(buf)?);
            let txns = get_varint(buf)? as usize;
            let loaded = get_bool(buf)?;
            let len = get_varint(buf)? as usize;
            if buf.remaining() < len {
                return Err(SnapshotError::Codec(CodecError::UnexpectedEof));
            }
            let bytes = buf[..len].to_vec();
            *buf = &buf[len..];
            if !loaded {
                // Validate now: a straggler reload must never hit corrupt
                // bytes (it would panic, not error).
                let entries = decode_segment(&bytes)?;
                if entries.len() != txns {
                    return Err(SnapshotError::Corrupt(format!(
                        "spill segment claims {txns} transactions, decodes {}",
                        entries.len()
                    )));
                }
            }
            segments.push(SegmentExport { min_ts, max_ts, txns, loaded, bytes });
        }
        ck.spill.import_segments(segments)?;

        if version >= 3 {
            for _ in 0..get_varint(buf)? {
                let k = Key(get_varint(buf)?);
                let e = get_event_key(buf)?;
                let s = codec::get_snapshot(buf)?;
                ck.membership.record(k, e, &s, None);
            }
            ck.reload_floor = Timestamp(get_varint(buf)?);
        } else if ck.has_committed_ext {
            // v2 body: rebuild the summaries from the frontier. Exact,
            // because v2 writers latched the frontier against pruning
            // whenever committed-EXT readers were possible, so every
            // committed version is still in it.
            let versions: Vec<(Key, EventKey, aion_types::Snapshot)> =
                ck.frontier.iter().map(|(k, e, s)| (k, e, s.clone())).collect();
            for (k, e, s) in versions {
                ck.membership.record(k, e, &s, None);
            }
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{Checker, TxnBuilder, Value};

    fn t(tid: u64, sid: u32, sno: u32, s: u64, c: u64) -> TxnBuilder {
        TxnBuilder::new(tid).session(sid, sno).interval(s, c)
    }

    fn busy_checker() -> OnlineChecker {
        let mut ck = OnlineChecker::builder()
            .gc(OnlineGcPolicy::Checking { max_txns: 4 })
            .track_flip_details(true)
            .build()
            .unwrap();
        for i in 0..12u64 {
            ck.feed(
                t(i + 1, (i % 3) as u32, (i / 3) as u32, 10 * i + 1, 10 * i + 2)
                    .put(Key(i % 5), Value(i))
                    .read(Key((i + 1) % 5), Value(99))
                    .build(),
                i,
            );
        }
        ck
    }

    #[test]
    fn checkpoint_restore_checkpoint_is_byte_identical() {
        let mut ck = busy_checker();
        let snap = ck.checkpoint().unwrap();
        let mut back = OnlineChecker::restore(&snap).unwrap();
        assert_eq!(back.checkpoint().unwrap(), snap, "restore is lossless");
    }

    #[test]
    fn restored_checker_continues_identically() {
        let mut a = busy_checker();
        let snap = a.checkpoint().unwrap();
        let mut b = OnlineChecker::restore(&snap).unwrap();
        for (i, now) in [(100u64, 120u64), (101, 130)] {
            let txn = t(i, 0, 4, 10 * i, 10 * i + 1).read(Key(0), Value(7)).build();
            assert_eq!(a.feed(txn.clone(), now), b.feed(txn, now));
        }
        assert_eq!(a.tick(1_000_000), b.tick(1_000_000));
        let (oa, ob) = (a.finish(), b.finish());
        assert_eq!(oa.report.violations, ob.report.violations);
        assert_eq!(oa.stats, ob.stats);
    }

    #[test]
    fn truncated_and_corrupt_snapshots_are_typed_errors() {
        let mut ck = busy_checker();
        let snap = ck.checkpoint().unwrap();
        for cut in [0, 5, 9, 10, 11, snap.len() / 2, snap.len() - 1] {
            let err = OnlineChecker::restore(&snap[..cut]);
            assert!(err.is_err(), "truncation at {cut} must fail");
        }
        let mut garbled = snap.clone();
        garbled[0] ^= 0xff;
        assert!(matches!(OnlineChecker::restore(&garbled), Err(SnapshotError::BadMagic)));
        let mut trailing = snap.clone();
        trailing.push(0);
        assert!(matches!(OnlineChecker::restore(&trailing), Err(SnapshotError::Corrupt(_))));
    }

    /// A v2 writer latched the frontier against pruning whenever
    /// committed-EXT readers were possible, so a v2 body is exactly a v3
    /// body minus the membership tail. Craft one by stripping the tail
    /// off a v3 snapshot and patching the version byte: restore must
    /// rebuild identical summaries from the retained frontier and keep
    /// checking identically.
    #[test]
    fn v2_snapshot_without_membership_tail_still_restores() {
        let mut ck = OnlineChecker::builder().level(IsolationLevel::ReadCommitted).build().unwrap();
        for i in 0..10u64 {
            ck.feed(
                t(i + 1, 0, i as u32, 10 * i + 1, 10 * i + 2).put(Key(i % 3), Value(i)).build(),
                i,
            );
        }
        let snap = ck.checkpoint().unwrap();
        assert!(!ck.membership.is_empty(), "the test needs live summaries");

        // Re-encode the v3 tail with the same codec to learn its length.
        let mut tail = BytesMut::new();
        let entries = ck.membership.sorted_entries();
        put_varint(&mut tail, entries.len() as u64);
        for (k, e, s) in entries {
            put_varint(&mut tail, k.0);
            put_event_key(&mut tail, e);
            codec::put_snapshot(&mut tail, s);
        }
        put_varint(&mut tail, ck.reload_floor.0);

        let mut v2 = snap[..snap.len() - tail.len()].to_vec();
        assert_eq!(v2[8], 3, "version byte lives after the 8-byte magic");
        v2[8] = 2;
        let mut back = OnlineChecker::restore(&v2).unwrap();
        assert_eq!(
            back.membership.sorted_entries(),
            ck.membership.sorted_entries(),
            "v2 restore rebuilds the summaries from the retained frontier"
        );
        // The restored session answers stale committed RC reads like the
        // uninterrupted one.
        let stale = || t(100, 1, 0, 200, 201).read(Key(0), Value(0)).build();
        assert_eq!(ck.feed(stale(), 100), back.feed(stale(), 100));
        let (oa, ob) = (ck.finish(), back.finish());
        assert_eq!(oa.report.violations, ob.report.violations);
        assert!(oa.is_ok(), "stale committed reads are RC-legal: {}", oa.report);
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let mut buf = BytesMut::new();
        put_snapshot_header(&mut buf, aion_types::snapshot::SNAPSHOT_KIND_SHARDED);
        assert!(matches!(
            OnlineChecker::restore(&buf[..]),
            Err(SnapshotError::WrongKind { expected: 0, found: 1 })
        ));
    }

    #[test]
    fn config_roundtrip_preserves_mixed_policies() {
        let mut cfg = AionConfig {
            levels: LevelPolicy::per_session(
                [
                    (SessionId(3), IsolationLevel::Ser),
                    (SessionId(1), IsolationLevel::ReadCommitted),
                ],
                IsolationLevel::Si,
            ),
            gc: OnlineGcPolicy::Full { max_txns: 77 },
            shard_filter: Some((1, 3)),
            coordinated: true,
            ..AionConfig::default()
        };
        cfg.shard.shards = 3;
        let mut buf = BytesMut::new();
        put_config(&mut buf, &cfg);
        let back = get_config(&mut &buf[..]).unwrap();
        assert_eq!(back.levels.level_for(&t(1, 3, 0, 1, 2).build()), IsolationLevel::Ser);
        assert_eq!(back.levels.level_for(&t(1, 9, 0, 1, 2).build()), IsolationLevel::Si);
        assert_eq!(back.gc, OnlineGcPolicy::Full { max_txns: 77 });
        assert_eq!(back.shard_filter, Some((1, 3)));
        assert!(back.coordinated);
    }
}
