//! Spill-to-disk garbage collection backing store.
//!
//! AION "transfers frontier_ts, ongoing_ts, and transactions below a
//! specified timestamp from memory to disk ... and reloads these data
//! structures and transactions as needed later on" (paper §III-C3). A
//! spill segment stores encoded transactions together with their computed
//! write sets; on reload the checker reconstructs the frontier versions
//! and conflict intervals from them, so nothing else needs to be persisted.
//!
//! Segments can live in real files or in memory (same encode/decode cost,
//! no filesystem dependency — useful for tests and deterministic benches).

use aion_types::codec::{self, CodecError};
use aion_types::rng::SplitMix64;
use aion_types::{Key, Snapshot, Timestamp, Transaction};
use bytes::BytesMut;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Seeded spill-IO fault injection plan (used by the `aion-dst`
/// simulation harness; `None` everywhere in production).
///
/// Each spill-store operation consults the plan before touching its
/// backend and fails with a synthetic [`std::io::Error`] with the
/// configured probability. The plan is shared (`Arc`) across the shard
/// workers of one checking session so a single seed governs the whole
/// run; draws are serialized through a mutex, which is irrelevant for
/// determinism within one worker and fine for the simulator, whose
/// workers run on one thread anyway.
pub struct SpillFaultPlan {
    rng: Mutex<SplitMix64>,
    write_fail_p: f64,
    reload_fail_p: f64,
    fired: AtomicU64,
}

impl SpillFaultPlan {
    /// A plan failing spill writes with probability `write_fail_p` and
    /// segment reloads with probability `reload_fail_p`.
    pub fn new(seed: u64, write_fail_p: f64, reload_fail_p: f64) -> Arc<SpillFaultPlan> {
        Arc::new(SpillFaultPlan {
            rng: Mutex::new(SplitMix64::new(seed ^ 0x5fa1_17fa_u64)),
            write_fail_p,
            reload_fail_p,
            fired: AtomicU64::new(0),
        })
    }

    /// How many faults this plan has injected so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    fn trip(&self, p: f64, what: &str) -> Option<std::io::Error> {
        if p <= 0.0 {
            return None;
        }
        // A poisoned lock only means another thread panicked mid-roll;
        // the RNG state itself is still usable.
        let fired = match self.rng.lock() {
            Ok(mut rng) => rng.chance(p),
            Err(poisoned) => poisoned.into_inner().chance(p),
        };
        if fired {
            self.fired.fetch_add(1, Ordering::SeqCst);
            Some(std::io::Error::other(format!("injected spill {what} fault")))
        } else {
            None
        }
    }
}

impl std::fmt::Debug for SpillFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillFaultPlan")
            .field("write_fail_p", &self.write_fail_p)
            .field("reload_fail_p", &self.reload_fail_p)
            .field("fired", &self.fired())
            .finish()
    }
}

/// One spilled transaction with its derived write set.
#[derive(Clone, PartialEq, Debug)]
pub struct SpillEntry {
    /// The original transaction.
    pub txn: Transaction,
    /// Final written snapshot per key (as computed at first processing).
    pub write_set: Vec<(Key, Snapshot)>,
}

/// Identifier of a spill segment.
pub type SegmentId = usize;

#[derive(Debug)]
struct SegmentMeta {
    min_ts: Timestamp,
    max_ts: Timestamp,
    txns: usize,
    loaded: bool,
    /// Offset/length in the disk file (unused by the memory backend).
    offset: u64,
    len: usize,
}

enum Backend {
    Memory(Vec<Vec<u8>>),
    Disk { file: File, _path: PathBuf },
}

/// Append-only segmented spill store.
pub struct SpillStore {
    backend: Backend,
    segments: Vec<SegmentMeta>,
    faults: Option<Arc<SpillFaultPlan>>,
}

impl SpillStore {
    /// A spill store backed by memory buffers (encode/decode costs are
    /// identical to the disk backend).
    pub fn in_memory() -> SpillStore {
        SpillStore { backend: Backend::Memory(Vec::new()), segments: Vec::new(), faults: None }
    }

    /// A spill store backed by a file at `path` (created/truncated).
    pub fn on_disk(path: PathBuf) -> std::io::Result<SpillStore> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        Ok(SpillStore {
            backend: Backend::Disk { file, _path: path },
            segments: Vec::new(),
            faults: None,
        })
    }

    /// Install a fault-injection plan (testing only; see
    /// [`SpillFaultPlan`]).
    pub fn set_faults(&mut self, faults: Option<Arc<SpillFaultPlan>>) {
        self.faults = faults;
    }

    /// Number of segments written so far.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Spill a batch of entries as one segment; returns its id and the
    /// encoded size in bytes. Entries must be non-empty.
    ///
    /// On an IO error no segment is recorded and the store stays
    /// consistent: the caller keeps the entries resident and may retry a
    /// later pass.
    pub fn spill(&mut self, entries: &[SpillEntry]) -> std::io::Result<(SegmentId, usize)> {
        assert!(!entries.is_empty(), "cannot spill an empty segment");
        if let Some(e) = self.faults.as_ref().and_then(|f| f.trip(f.write_fail_p, "write")) {
            return Err(e);
        }
        let mut buf = BytesMut::with_capacity(entries.len() * 64);
        codec::put_varint(&mut buf, entries.len() as u64);
        let mut min_ts = Timestamp::MAX;
        let mut max_ts = Timestamp::MIN;
        for e in entries {
            min_ts = min_ts.min(e.txn.start_ts);
            max_ts = max_ts.max(e.txn.commit_ts);
            // The ext layout carries the declared isolation level, so a
            // reloaded transaction resolves to the level it was checked
            // at under a per-transaction policy.
            codec::put_txn_ext(&mut buf, &e.txn);
            codec::put_varint(&mut buf, e.write_set.len() as u64);
            for (k, s) in &e.write_set {
                codec::put_varint(&mut buf, k.0);
                codec::put_snapshot(&mut buf, s);
            }
        }
        let bytes = buf.len();
        let (offset, len) = match &mut self.backend {
            Backend::Memory(bufs) => {
                bufs.push(buf.to_vec());
                (0, bytes)
            }
            Backend::Disk { file, .. } => {
                let offset = file.seek(SeekFrom::End(0))?;
                file.write_all(&buf)?;
                (offset, bytes)
            }
        };
        let id = self.segments.len();
        self.segments.push(SegmentMeta {
            min_ts,
            max_ts,
            txns: entries.len(),
            loaded: false,
            offset,
            len,
        });
        Ok((id, bytes))
    }

    /// Ids of not-yet-reloaded segments whose `[min_ts, max_ts]` range
    /// intersects `[lo, hi]`.
    pub fn segments_overlapping(&self, lo: Timestamp, hi: Timestamp) -> Vec<SegmentId> {
        self.segments
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.loaded && s.min_ts <= hi && lo <= s.max_ts)
            .map(|(i, _)| i)
            .collect()
    }

    /// Reload a segment, marking it resident. Returns its entries.
    ///
    /// A failed reload (here mapped to [`CodecError::UnexpectedEof`], as
    /// the caller distinguishes only success from failure) leaves the
    /// segment marked *not* loaded, so a later pass can retry it.
    pub fn reload(&mut self, id: SegmentId) -> Result<Vec<SpillEntry>, CodecError> {
        if let Some(f) = self.faults.as_ref() {
            if f.trip(f.reload_fail_p, "reload").is_some() {
                return Err(CodecError::UnexpectedEof);
            }
        }
        let meta = &mut self.segments[id];
        let raw: Vec<u8> = match &mut self.backend {
            Backend::Memory(bufs) => bufs[id].clone(),
            Backend::Disk { file, .. } => {
                let mut buf = vec![0u8; meta.len];
                file.seek(SeekFrom::Start(meta.offset)).map_err(|_| CodecError::UnexpectedEof)?;
                file.read_exact(&mut buf).map_err(|_| CodecError::UnexpectedEof)?;
                buf
            }
        };
        meta.loaded = true;
        decode_segment(&raw)
    }

    /// Total transactions currently spilled out (not reloaded).
    pub fn resident_out(&self) -> usize {
        self.segments.iter().filter(|s| !s.loaded).map(|s| s.txns).sum()
    }

    /// Bytes of process memory this store currently holds: all segment
    /// buffers for the in-memory backend (which retains every segment,
    /// reloaded or not), plus the per-segment metadata either backend
    /// keeps. Disk-backed stores only pay the metadata — their segments
    /// live in the file.
    pub fn buffered_bytes(&self) -> usize {
        let meta = self.segments.len() * std::mem::size_of::<SegmentMeta>();
        match &self.backend {
            Backend::Memory(bufs) => meta + bufs.iter().map(Vec::len).sum::<usize>(),
            Backend::Disk { .. } => meta,
        }
    }

    /// Export every segment — raw encoded bytes plus metadata — for the
    /// checkpoint codec. `&mut self`: the disk backend re-reads segment
    /// bytes from the file.
    pub(crate) fn export_segments(&mut self) -> std::io::Result<Vec<SegmentExport>> {
        let mut out = Vec::with_capacity(self.segments.len());
        for id in 0..self.segments.len() {
            let (min_ts, max_ts, txns, loaded, offset, len) = {
                let m = &self.segments[id];
                (m.min_ts, m.max_ts, m.txns, m.loaded, m.offset, m.len)
            };
            let bytes = match &mut self.backend {
                Backend::Memory(bufs) => bufs[id].clone(),
                Backend::Disk { file, .. } => {
                    let mut buf = vec![0u8; len];
                    file.seek(SeekFrom::Start(offset))?;
                    file.read_exact(&mut buf)?;
                    buf
                }
            };
            out.push(SegmentExport { min_ts, max_ts, txns, loaded, bytes });
        }
        Ok(out)
    }

    /// Re-install exported segments into a *fresh* store (restore path),
    /// preserving ids, timestamp ranges and loaded flags. The disk
    /// backend appends the bytes to its (truncated) file.
    pub(crate) fn import_segments(&mut self, segments: Vec<SegmentExport>) -> std::io::Result<()> {
        debug_assert!(self.segments.is_empty(), "import only into a fresh store");
        for seg in segments {
            let len = seg.bytes.len();
            let offset = match &mut self.backend {
                Backend::Memory(bufs) => {
                    bufs.push(seg.bytes);
                    0
                }
                Backend::Disk { file, .. } => {
                    let offset = file.seek(SeekFrom::End(0))?;
                    file.write_all(&seg.bytes)?;
                    offset
                }
            };
            self.segments.push(SegmentMeta {
                min_ts: seg.min_ts,
                max_ts: seg.max_ts,
                txns: seg.txns,
                loaded: seg.loaded,
                offset,
                len,
            });
        }
        Ok(())
    }
}

/// Decode one segment's raw bytes into its spill entries. Shared by
/// [`SpillStore::reload`] and the checkpoint codec, which validates
/// imported segments eagerly so a corrupt checkpoint surfaces as a typed
/// error at restore time instead of a panic at the next straggler reload.
pub(crate) fn decode_segment(raw: &[u8]) -> Result<Vec<SpillEntry>, CodecError> {
    let mut slice = raw;
    let count = codec::get_varint(&mut slice)? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let txn = codec::get_txn_ext(&mut slice)?;
        let n = codec::get_varint(&mut slice)? as usize;
        let mut write_set = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let k = Key(codec::get_varint(&mut slice)?);
            let s = codec::get_snapshot(&mut slice)?;
            write_set.push((k, s));
        }
        out.push(SpillEntry { txn, write_set });
    }
    Ok(out)
}

/// One exported spill segment: the raw encoded bytes plus the metadata
/// needed to re-install it with identical reload behaviour.
#[derive(Debug)]
pub(crate) struct SegmentExport {
    pub(crate) min_ts: Timestamp,
    pub(crate) max_ts: Timestamp,
    pub(crate) txns: usize,
    pub(crate) loaded: bool,
    pub(crate) bytes: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{TxnBuilder, Value};

    fn entry(tid: u64, s: u64, c: u64) -> SpillEntry {
        let txn = TxnBuilder::new(tid)
            .session(0, 0)
            .interval(s, c)
            .put(Key(1), Value(tid))
            .read(Key(2), Value(0))
            .build();
        SpillEntry { txn, write_set: vec![(Key(1), Snapshot::Scalar(Value(tid)))] }
    }

    #[test]
    fn memory_roundtrip() {
        let mut store = SpillStore::in_memory();
        let entries = vec![entry(1, 10, 20), entry(2, 30, 40)];
        let (id, bytes) = store.spill(&entries).unwrap();
        assert!(bytes > 0);
        assert_eq!(store.resident_out(), 2);
        let back = store.reload(id).unwrap();
        assert_eq!(back, entries);
        assert_eq!(store.resident_out(), 0);
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("aion-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.bin");
        let mut store = SpillStore::on_disk(path.clone()).unwrap();
        let a = vec![entry(1, 10, 20)];
        let b = vec![entry(2, 30, 40), entry(3, 50, 60)];
        let (ia, _) = store.spill(&a).unwrap();
        let (ib, _) = store.spill(&b).unwrap();
        assert_eq!(store.reload(ib).unwrap(), b);
        assert_eq!(store.reload(ia).unwrap(), a);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overlap_query_by_timestamp_range() {
        let mut store = SpillStore::in_memory();
        let (a, _) = store.spill(&[entry(1, 10, 20)]).unwrap();
        let (b, _) = store.spill(&[entry(2, 30, 40)]).unwrap();
        assert_eq!(store.segments_overlapping(Timestamp(15), Timestamp(18)), vec![a]);
        assert_eq!(store.segments_overlapping(Timestamp(5), Timestamp(100)), vec![a, b]);
        assert!(store.segments_overlapping(Timestamp(21), Timestamp(29)).is_empty());
        // Reloaded segments are not offered again.
        store.reload(a).unwrap();
        assert!(store.segments_overlapping(Timestamp(15), Timestamp(18)).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot spill an empty segment")]
    fn empty_spill_rejected() {
        let _ = SpillStore::in_memory().spill(&[]);
    }

    #[test]
    fn injected_write_faults_are_typed_and_leave_the_store_consistent() {
        let mut store = SpillStore::in_memory();
        store.set_faults(Some(SpillFaultPlan::new(7, 1.0, 0.0)));
        let err = store.spill(&[entry(1, 10, 20)]).unwrap_err();
        assert!(err.to_string().contains("injected spill write fault"));
        assert_eq!(store.num_segments(), 0);
        assert_eq!(store.resident_out(), 0);
        // Clearing the plan restores normal operation.
        store.set_faults(None);
        let (id, _) = store.spill(&[entry(1, 10, 20)]).unwrap();
        assert_eq!(store.reload(id).unwrap().len(), 1);
    }

    #[test]
    fn injected_reload_faults_keep_the_segment_retryable() {
        let mut store = SpillStore::in_memory();
        let (id, _) = store.spill(&[entry(1, 10, 20)]).unwrap();
        let plan = SpillFaultPlan::new(3, 0.0, 1.0);
        store.set_faults(Some(plan.clone()));
        assert_eq!(store.reload(id), Err(CodecError::UnexpectedEof));
        assert_eq!(plan.fired(), 1);
        // The segment was not marked loaded: still offered for reload.
        assert_eq!(store.segments_overlapping(Timestamp(10), Timestamp(20)), vec![id]);
        store.set_faults(None);
        assert_eq!(store.reload(id).unwrap().len(), 1);
    }
}
