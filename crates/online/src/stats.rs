//! Flip-flop and runtime statistics for the online checker.
//!
//! A *flip-flop* is one switch of a read's tentative EXT verdict
//! (`⊤ ↔ ⊥`) caused by out-of-order arrivals (paper §VI-C). The paper
//! reports (a) how many (txn, key) pairs flip how often, (b) how many
//! unique transactions are involved, and (c) how quickly false
//! positives/negatives are rectified. [`FlipTracker`] collects exactly
//! that; detail collection can be disabled for throughput runs.
//!
//! The aggregate types live in `aion_types::check` so the uniform
//! [`aion_types::Outcome`] can carry them for every checker; they are
//! re-exported here under their historical names.

use aion_types::{FxHashMap, FxHashSet, Key, TxnId};

pub use aion_types::check::{CheckerStats, FlipSummary};

/// Historical name for the online checker's runtime counters, now the
/// workspace-wide [`CheckerStats`].
pub type AionStats = CheckerStats;

/// Collects flip-flop events.
///
/// Fields are `pub(crate)` for the checkpoint codec ([`crate::snapshot`]),
/// which persists the tracker verbatim so a restored session's flip
/// statistics continue exactly where the interrupted run left off.
#[derive(Debug, Default)]
pub struct FlipTracker {
    pub(crate) detail: bool,
    pub(crate) total_flips: u64,
    pub(crate) flips_per_pair: FxHashMap<(TxnId, Key), u32>,
    pub(crate) txns_with_flips: FxHashSet<TxnId>,
    pub(crate) rectify_ms: Vec<u64>,
}

impl FlipTracker {
    /// A tracker; with `detail`, per-pair histograms and rectification
    /// latencies are retained (memory ∝ number of flipping pairs).
    pub fn new(detail: bool) -> FlipTracker {
        FlipTracker { detail, ..FlipTracker::default() }
    }

    /// Record one verdict switch for `(tid, key)`. `rectified_after_ms` is
    /// set when the switch is wrong→ok, giving the false-verdict duration.
    pub fn record_flip(&mut self, tid: TxnId, key: Key, rectified_after_ms: Option<u64>) {
        self.total_flips += 1;
        if self.detail {
            *self.flips_per_pair.entry((tid, key)).or_insert(0) += 1;
            self.txns_with_flips.insert(tid);
            if let Some(ms) = rectified_after_ms {
                self.rectify_ms.push(ms);
            }
        }
    }

    /// Summarize into histogram form.
    pub fn summary(&self) -> FlipSummary {
        let mut flip_histogram = [0usize; 4];
        // aion-lint: allow(determinism) — order-insensitive histogram
        // fold; each value lands in its bucket regardless of visit order
        for &n in self.flips_per_pair.values() {
            let bucket = (n as usize).min(4) - 1;
            flip_histogram[bucket] += 1;
        }
        FlipSummary {
            total_flips: self.total_flips,
            pairs_with_flips: self.flips_per_pair.len(),
            txns_with_flips: self.txns_with_flips.len(),
            flip_histogram,
            rectify_ms: self.rectify_ms.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_and_buckets() {
        let mut t = FlipTracker::new(true);
        t.record_flip(TxnId(1), Key(1), None); // wrong
        t.record_flip(TxnId(1), Key(1), Some(5)); // rectified after 5ms
        t.record_flip(TxnId(2), Key(3), None);
        let s = t.summary();
        assert_eq!(s.total_flips, 3);
        assert_eq!(s.pairs_with_flips, 2);
        assert_eq!(s.txns_with_flips, 2);
        assert_eq!(s.flip_histogram, [1, 1, 0, 0]); // one pair flipped once, one twice
        assert_eq!(s.rectify_ms, vec![5]);
    }

    #[test]
    fn histogram_caps_at_four_plus() {
        let mut t = FlipTracker::new(true);
        for _ in 0..7 {
            t.record_flip(TxnId(1), Key(1), None);
        }
        assert_eq!(t.summary().flip_histogram, [0, 0, 0, 1]);
    }

    #[test]
    fn detail_off_keeps_only_totals() {
        let mut t = FlipTracker::new(false);
        t.record_flip(TxnId(1), Key(1), Some(3));
        let s = t.summary();
        assert_eq!(s.total_flips, 1);
        assert_eq!(s.pairs_with_flips, 0);
        assert!(s.rectify_ms.is_empty());
    }

    #[test]
    fn rectify_buckets_match_figure13() {
        let s = FlipSummary {
            rectify_ms: vec![0, 1, 2, 5, 10, 50, 99, 100, 1500],
            ..FlipSummary::default()
        };
        assert_eq!(s.rectify_histogram(), [2, 1, 2, 2, 2]);
    }
}
