//! The committed-membership index: RC's EXT predicate in `O(log n)`.
//!
//! The [`ExtPredicate::Committed`](aion_types::ExtPredicate) membership
//! question — *does any committed version of key `k` strictly before
//! anchor `a` equal the observed snapshot?* — used to be answered by
//! walking the key's whole frontier chain per read, and (worse) forced
//! the frontier to be exempted from GC pruning so ancient versions
//! stayed walkable. [`MembershipIndex`] replaces both: each committed
//! version is folded in **once at commit time** as a
//! `(key, snapshot) → sorted commit-event set` entry, so the membership
//! query is a hash lookup plus an ordered-set minimum, and the summary
//! — small: one `(EventKey, value-hash)` pair per committed version,
//! with the snapshot stored once per distinct value — survives
//! `prune_below` untouched while the frontier sheds its chains.
//!
//! Maintenance mirrors the frontier exactly:
//!
//! * every `frontier.insert` that *publishes* a version also records it
//!   here (arrival step ③, list-cascade recomputation, spill reload);
//! * a cascade that **revises** a published snapshot replaces the old
//!   value's event with the new one (the old value was never a
//!   committed observation);
//! * reload re-records are idempotent (ordered-set insert).
//!
//! The index is only populated when the session's level policy can
//! produce committed-predicate readers (`has_committed_ext`), so
//! SI/SER-only sessions pay nothing.

use aion_types::{EventKey, FxHashMap, Key, Snapshot};
use std::collections::BTreeSet;

/// The commit events that published one `(key, value)` pair. Almost
/// every pair is published exactly once, so the singleton case stays
/// inline — no heap node until a second event actually shares the
/// value (the hot commit path allocates nothing per record).
#[derive(Debug)]
enum Events {
    One(EventKey),
    Many(BTreeSet<EventKey>),
}

impl Events {
    /// The set's ordered minimum — the only element
    /// [`MembershipIndex::contains_before`] ever consults.
    fn min(&self) -> Option<EventKey> {
        match self {
            Events::One(at) => Some(*at),
            Events::Many(set) => set.first().copied(),
        }
    }
}

/// Per-key committed-version summary answering the RC membership
/// predicate without touching version chains. See the module docs.
#[derive(Debug, Default)]
pub struct MembershipIndex {
    /// key → (published snapshot → commit events that published it).
    keys: FxHashMap<Key, FxHashMap<Snapshot, Events>>,
    /// Total `(key, event)` entries across all value sets.
    versions: usize,
}

impl MembershipIndex {
    /// An empty index.
    pub fn new() -> MembershipIndex {
        MembershipIndex::default()
    }

    /// Committed versions recorded (one per distinct `(key, event)`).
    pub fn len(&self) -> usize {
        self.versions
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.versions == 0
    }

    /// Record the version published at `(key, at)`. `prev` is the
    /// snapshot this insertion *replaced* at the same event (a list
    /// cascade revising a published value), whose entry is withdrawn —
    /// the revised value was never a committed observation. Recording
    /// the same `(key, at, snap)` again is a no-op, which makes spill
    /// reloads idempotent.
    pub fn record(&mut self, key: Key, at: EventKey, snap: &Snapshot, prev: Option<&Snapshot>) {
        let per_key = self.keys.entry(key).or_default();
        if let Some(old) = prev.filter(|old| *old != snap) {
            let mut drop_value = false;
            if let Some(events) = per_key.get_mut(old) {
                match events {
                    Events::One(only) if *only == at => {
                        self.versions -= 1;
                        drop_value = true;
                    }
                    Events::One(_) => {}
                    Events::Many(set) => {
                        if set.remove(&at) {
                            self.versions -= 1;
                        }
                        match set.len() {
                            0 => drop_value = true,
                            1 => {
                                if let Some(&only) = set.first() {
                                    *events = Events::One(only);
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            if drop_value {
                per_key.remove(old);
            }
        }
        // `get_mut` before `insert` so the common hit path (same value
        // republished, reload re-record) never clones the snapshot.
        match per_key.get_mut(snap) {
            None => {
                per_key.insert(snap.clone(), Events::One(at));
                self.versions += 1;
            }
            Some(events) => match events {
                Events::One(only) if *only == at => {}
                Events::One(only) => {
                    let mut set = BTreeSet::new();
                    set.insert(*only);
                    set.insert(at);
                    *events = Events::Many(set);
                    self.versions += 1;
                }
                Events::Many(set) => {
                    if set.insert(at) {
                        self.versions += 1;
                    }
                }
            },
        }
    }

    /// The membership predicate: is `observed` the snapshot of *some*
    /// version of `key` committed strictly before `anchor`? One hash
    /// lookup plus the value set's ordered minimum.
    pub fn contains_before(&self, key: Key, anchor: EventKey, observed: &Snapshot) -> bool {
        self.keys
            .get(&key)
            .and_then(|per_key| per_key.get(observed))
            .and_then(Events::min)
            .is_some_and(|first| first < anchor)
    }

    /// Every `(key, event, snapshot)` triple, sorted by `(key, event)` —
    /// the canonical order the checkpoint codec serializes.
    pub fn sorted_entries(&self) -> Vec<(Key, EventKey, &Snapshot)> {
        let mut out: Vec<(Key, EventKey, &Snapshot)> = Vec::with_capacity(self.versions);
        // aion-lint: allow(determinism) — collected and sorted below
        // before the order can escape
        for (key, per_key) in &self.keys {
            // aion-lint: allow(determinism) — same sort covers the
            // value-map order
            for (snap, events) in per_key {
                match events {
                    Events::One(at) => out.push((*key, *at, snap)),
                    Events::Many(set) => out.extend(set.iter().map(|ev| (*key, *ev, snap))),
                }
            }
        }
        out.sort_unstable_by_key(|(k, ev, _)| (*k, *ev));
        out
    }

    /// Drop events that can no longer influence any answer.
    /// [`MembershipIndex::contains_before`] only ever reads a set's
    /// minimum, and once that minimum is strictly below the GC horizon
    /// it is frozen — cascade recomputation only withdraws versions at
    /// or above a live writer's anchor, which the horizon is chosen
    /// below — so every *other* event in such a set is redundant
    /// forever. (A set whose minimum is at or above the horizon keeps
    /// all its events: the minimum may still be withdrawn, promoting
    /// the next one.) Called on each GC pass; keeps the summary bounded
    /// by `distinct (key, value) pairs + events above the horizon`
    /// instead of the full commit history.
    pub fn compact_below(&mut self, horizon: EventKey) {
        let mut dropped = 0usize;
        // aion-lint: allow(determinism) — per-set compaction is order
        // independent
        for per_key in self.keys.values_mut() {
            // aion-lint: allow(determinism) — same argument for the
            // value map
            for events in per_key.values_mut() {
                let Events::Many(set) = events else { continue };
                let Some(&min) = set.first() else { continue };
                if min < horizon {
                    dropped += set.len() - 1;
                    *events = Events::One(min);
                }
            }
        }
        self.versions -= dropped;
    }

    /// Rough resident-byte estimate, mirroring the frontier's per-entry
    /// accounting in `state_bytes_estimate`: each recorded version costs
    /// an event entry, each distinct value a stored snapshot.
    pub fn approx_bytes(&self) -> usize {
        let distinct_values: usize = self.keys.values().map(FxHashMap::len).sum();
        self.versions * 24 + distinct_values * 72
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{Timestamp, TxnId, Value};

    fn ev(n: u64) -> EventKey {
        EventKey::commit(Timestamp(n), TxnId(n))
    }

    fn scalar(v: u64) -> Snapshot {
        Snapshot::Scalar(Value(v))
    }

    #[test]
    fn records_and_answers_strictly_before() {
        let mut m = MembershipIndex::new();
        m.record(Key(1), ev(10), &scalar(5), None);
        assert!(m.contains_before(Key(1), ev(11), &scalar(5)));
        assert!(!m.contains_before(Key(1), ev(10), &scalar(5)), "strictly before");
        assert!(!m.contains_before(Key(1), ev(11), &scalar(6)), "other value");
        assert!(!m.contains_before(Key(2), ev(11), &scalar(5)), "other key");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn reinsert_is_idempotent_and_replace_withdraws() {
        let mut m = MembershipIndex::new();
        m.record(Key(1), ev(10), &scalar(5), None);
        m.record(Key(1), ev(10), &scalar(5), None);
        assert_eq!(m.len(), 1, "idempotent re-record");
        // A cascade revises the published snapshot at the same event:
        // the old value must stop justifying reads.
        m.record(Key(1), ev(10), &scalar(7), Some(&scalar(5)));
        assert_eq!(m.len(), 1);
        assert!(!m.contains_before(Key(1), ev(99), &scalar(5)));
        assert!(m.contains_before(Key(1), ev(99), &scalar(7)));
    }

    #[test]
    fn same_value_at_many_events_uses_the_minimum() {
        let mut m = MembershipIndex::new();
        m.record(Key(1), ev(30), &scalar(5), None);
        m.record(Key(1), ev(10), &scalar(5), None);
        m.record(Key(1), ev(20), &scalar(5), None);
        assert_eq!(m.len(), 3);
        assert!(m.contains_before(Key(1), ev(11), &scalar(5)), "min event justifies");
        // Withdrawing one event keeps the others.
        m.record(Key(1), ev(10), &scalar(9), Some(&scalar(5)));
        assert!(!m.contains_before(Key(1), ev(11), &scalar(5)));
        assert!(m.contains_before(Key(1), ev(21), &scalar(5)));
    }

    #[test]
    fn compaction_keeps_frozen_minima_and_live_sets() {
        let mut m = MembershipIndex::new();
        // Frozen set: min 10 < horizon 25 → collapses to just the min.
        for e in [10, 20, 30, 40] {
            m.record(Key(1), ev(e), &scalar(5), None);
        }
        // Live set: min 30 >= horizon → untouched (its min may still be
        // withdrawn by a cascade, promoting 35).
        m.record(Key(2), ev(30), &scalar(7), None);
        m.record(Key(2), ev(35), &scalar(7), None);
        m.compact_below(ev(25));
        assert_eq!(m.len(), 3, "4-event frozen set collapsed to 1, live set kept 2");
        // Answers are unchanged for every anchor.
        assert!(m.contains_before(Key(1), ev(11), &scalar(5)));
        assert!(m.contains_before(Key(1), ev(99), &scalar(5)));
        assert!(!m.contains_before(Key(1), ev(10), &scalar(5)));
        m.record(Key(2), ev(30), &scalar(8), Some(&scalar(7)));
        assert!(m.contains_before(Key(2), ev(36), &scalar(7)), "promoted fallback survives");
        assert!(!m.contains_before(Key(2), ev(35), &scalar(7)));
    }

    #[test]
    fn sorted_entries_are_canonical() {
        let mut m = MembershipIndex::new();
        m.record(Key(2), ev(10), &scalar(1), None);
        m.record(Key(1), ev(20), &scalar(2), None);
        m.record(Key(1), ev(10), &scalar(3), None);
        let flat: Vec<(Key, EventKey)> =
            m.sorted_entries().iter().map(|(k, e, _)| (*k, *e)).collect();
        assert_eq!(flat, vec![(Key(1), ev(10)), (Key(1), ev(20)), (Key(2), ev(10))]);
        assert!(m.approx_bytes() > 0);
    }
}
