//! # aion-online — AION
//!
//! The online timestamp-based isolation checkers from the paper *"Online
//! Timestamp-based Transactional Isolation Checking of Database Systems"*
//! (ICDE 2025): [`OnlineChecker`] implements AION (snapshot isolation) and
//! AION-SER (serializability) over continuous, out-of-order transaction
//! streams, with tentative EXT verdicts finalized by timeout, flip-flop
//! tracking, and spill-to-disk garbage collection.
//!
//! ```
//! use aion_online::{OnlineChecker, feed::{feed_plan, run_plan, FeedConfig}};
//! use aion_types::{DataKind, Key, TxnBuilder, Value};
//!
//! let mut checker = OnlineChecker::new_si(DataKind::Kv);
//! checker.receive(
//!     TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(7)).build(), 0);
//! checker.receive(
//!     TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(7)).build(), 1);
//! let outcome = checker.finish();
//! assert!(outcome.is_ok());
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(rust_2018_idioms)]

pub mod checker;
pub mod feed;
pub mod index;
pub mod membership;
pub mod sharded;
pub mod snapshot;
pub mod spill;
pub mod stats;
pub mod transport;
pub mod versioned;

pub use aion_types::check::{CheckEvent, Checker, Outcome, ShardConfig};
pub use aion_types::{IsolationLevel, LevelPolicy};
#[allow(deprecated)] // compatibility re-export, see `aion_types::check::Mode`
pub use checker::Mode;
pub use checker::{
    AionConfig, AionOutcome, ConfigError, OnlineChecker, OnlineCheckerBuilder, OnlineGcPolicy,
};
pub use feed::{
    feed_plan, route_txn, run_plan, shard_of, Arrival, FeedConfig, OnlineRunReport, RoutedTxn,
    TimedEvent,
};
pub use membership::MembershipIndex;
pub use sharded::ShardedChecker;
pub use spill::{SpillEntry, SpillFaultPlan, SpillStore};
pub use stats::{AionStats, FlipSummary};
pub use transport::{SimSchedule, SimStats};
pub use versioned::VersionedMap;
