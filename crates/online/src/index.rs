//! Secondary indexes used by the online checker: per-key event-ordered
//! reader/writer indexes and the versioned `ongoing` conflict index.

use crate::versioned::VersionedMap;
use aion_types::{EventKey, FxHashMap, FxHashSet, Key, TxnId};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Reference to one read inside a transaction (index into its read states).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReadRef {
    /// The reading transaction.
    pub tid: TxnId,
    /// Index into the transaction's read-state vector.
    pub read_idx: u32,
}

/// Per-key index of items anchored at events, ordered by event.
///
/// The inner map is `pub(crate)` so the checkpoint codec
/// ([`crate::snapshot`]) can serialize and restore the index *exactly* —
/// including per-event item order, which re-registration could not
/// reproduce for state that was GC-pruned or spill-reloaded.
#[derive(Clone, Debug)]
pub struct KeyEventIndex<T> {
    pub(crate) keys: FxHashMap<Key, BTreeMap<EventKey, Vec<T>>>,
}

impl<T> Default for KeyEventIndex<T> {
    fn default() -> Self {
        KeyEventIndex { keys: FxHashMap::default() }
    }
}

impl<T: Clone + PartialEq> KeyEventIndex<T> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `item` for `key` at `at`.
    pub fn insert(&mut self, key: Key, at: EventKey, item: T) {
        self.keys.entry(key).or_default().entry(at).or_default().push(item);
    }

    /// Items for `key` anchored inside `(lo, hi]`, with their anchor
    /// events, in event order. The upper bound is inclusive: a reader (or
    /// writer) anchored exactly at the bounding version's event belongs to
    /// the transaction that *produced* that version, and its own visible
    /// snapshot is strictly before its anchor — so it is affected by an
    /// insertion at `lo` just like anchors strictly inside the window.
    pub fn range(&self, key: Key, lo: EventKey, hi: EventKey) -> Vec<(EventKey, T)> {
        let mut out = Vec::new();
        if let Some(chain) = self.keys.get(&key) {
            for (e, items) in chain.range((Bound::Excluded(lo), Bound::Included(hi))) {
                for item in items {
                    out.push((*e, item.clone()));
                }
            }
        }
        out
    }

    /// Drop every entry anchored strictly below `horizon` (GC).
    pub fn prune_below(&mut self, horizon: EventKey) -> usize {
        let mut dropped = 0;
        self.keys.retain(|_, chain| {
            let old: Vec<EventKey> = chain
                .range((Bound::Unbounded, Bound::Excluded(horizon)))
                .map(|(e, _)| *e)
                .collect();
            for e in old {
                if let Some(items) = chain.remove(&e) {
                    dropped += items.len();
                }
            }
            !chain.is_empty()
        });
        dropped
    }

    /// Total anchored items (for stats).
    pub fn len(&self) -> usize {
        self.keys.values().flat_map(|c| c.values()).map(Vec::len).sum()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// One writer registered in the [`OngoingIndex`]: the transaction and
/// whether *its* isolation level activates NOCONFLICT. Carrying the
/// flag in the index (instead of looking the partner up at conflict
/// time) keeps mixed-level pair semantics correct even after the
/// partner transaction has been spilled out of resident memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OngoingWriter {
    /// The writing transaction.
    pub tid: TxnId,
    /// Whether its level forbids concurrent writers.
    pub noconflict: bool,
}

/// The `ongoing_ts` structure: per key, the set of transactions holding an
/// uncommitted write at each event of that key. Registering a transaction's
/// write interval returns every *overlapping* writer — exactly the
/// NOCONFLICT condition (paper step ②), computed arrival-driven so that
/// each conflicting pair is reported exactly once (when its second member
/// arrives).
#[derive(Clone, Debug, Default)]
pub struct OngoingIndex {
    pub(crate) map: VersionedMap<Vec<OngoingWriter>>,
}

impl OngoingIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register that `tid` (whose level's NOCONFLICT activation is
    /// `noconflict`) writes `key` over `[start, commit]`. Returns the
    /// distinct registered writers whose intervals on `key` overlap.
    /// With `silent`, versions are updated but no overlaps are returned
    /// (used when re-registering reloaded transactions whose conflicts were
    /// already reported before they were spilled).
    pub fn register(
        &mut self,
        key: Key,
        tid: TxnId,
        noconflict: bool,
        start: EventKey,
        commit: EventKey,
        silent: bool,
    ) -> Vec<OngoingWriter> {
        let me = OngoingWriter { tid, noconflict };
        let base: Vec<OngoingWriter> =
            self.map.get_before(key, start).map(|(_, v)| v.clone()).unwrap_or_default();

        let mut overlap: FxHashSet<OngoingWriter> = FxHashSet::default();
        if !silent {
            overlap.extend(base.iter().copied());
        }
        // Existing versions inside the interval: everyone there overlaps us,
        // and each of those snapshots must now include us.
        for (_, set) in self.map.range_mut(key, start, commit) {
            if !silent {
                overlap.extend(set.iter().copied());
            }
            if !set.iter().any(|w| w.tid == tid) {
                set.push(me);
            }
        }
        // Version at our start: ongoing just before, plus us.
        let mut at_start = base;
        at_start.push(me);
        self.map.insert(key, start, at_start);
        // Version at our commit: ongoing just before commit, minus us.
        let mut at_commit: Vec<OngoingWriter> =
            self.map.get_before(key, commit).map(|(_, v)| v.clone()).unwrap_or_default();
        at_commit.retain(|w| w.tid != tid);
        self.map.insert(key, commit, at_commit);

        overlap.retain(|w| w.tid != tid);
        let mut out: Vec<OngoingWriter> = overlap.into_iter().collect();
        out.sort_unstable_by_key(|w| w.tid);
        out
    }

    /// Drop versions strictly below `horizon`, keeping per-key bases.
    pub fn prune_below(&mut self, horizon: EventKey) -> usize {
        self.map.prune_below(horizon)
    }

    /// Number of stored versions (for stats).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no interval is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::Timestamp;

    fn s(ts: u64, tid: u64) -> EventKey {
        EventKey::start(Timestamp(ts), TxnId(tid))
    }
    fn c(ts: u64, tid: u64) -> EventKey {
        EventKey::commit(Timestamp(ts), TxnId(tid))
    }

    #[test]
    fn key_event_index_range_and_prune() {
        let mut idx: KeyEventIndex<u32> = KeyEventIndex::new();
        idx.insert(Key(1), s(10, 1), 100);
        idx.insert(Key(1), s(20, 2), 200);
        idx.insert(Key(1), s(20, 2), 201);
        idx.insert(Key(2), s(15, 3), 300);
        let got = idx.range(Key(1), s(5, 0), s(25, 9));
        assert_eq!(got.len(), 3);
        assert_eq!(idx.len(), 4);
        let dropped = idx.prune_below(s(20, 2));
        assert_eq!(dropped, 2); // key1@10 and key2@15
        assert_eq!(idx.range(Key(1), s(5, 0), s(25, 9)).len(), 2);
    }

    #[test]
    fn ongoing_detects_simple_overlap() {
        let mut idx = OngoingIndex::new();
        // t1 [1,5], t2 [3,7] on same key: overlap detected when t2 arrives.
        assert!(idx.register(Key(1), TxnId(1), true, s(1, 1), c(5, 1), false).is_empty());
        let conflicts = idx.register(Key(1), TxnId(2), true, s(3, 2), c(7, 2), false);
        assert_eq!(conflicts, vec![OngoingWriter { tid: TxnId(1), noconflict: true }]);
    }

    #[test]
    fn ongoing_no_overlap_for_disjoint_intervals() {
        let mut idx = OngoingIndex::new();
        idx.register(Key(1), TxnId(1), true, s(1, 1), c(2, 1), false);
        let conflicts = idx.register(Key(1), TxnId(2), true, s(3, 2), c(4, 2), false);
        assert!(conflicts.is_empty());
    }

    #[test]
    fn ongoing_out_of_order_arrival_detects_containment() {
        let mut idx = OngoingIndex::new();
        // t2 [3,4] arrives first; t1 [1,10] (containing t2) arrives later.
        idx.register(Key(1), TxnId(2), true, s(3, 2), c(4, 2), false);
        let conflicts = idx.register(Key(1), TxnId(1), true, s(1, 1), c(10, 1), false);
        assert_eq!(conflicts, vec![OngoingWriter { tid: TxnId(2), noconflict: true }]);
    }

    #[test]
    fn ongoing_figure2_example() {
        // Paper Fig. 2: T5 [4,7] and T3 [6,9] both write y; T2 [3,5] writes x.
        let y = Key(2);
        let mut idx = OngoingIndex::new();
        idx.register(y, TxnId(3), true, s(6, 3), c(9, 3), false);
        let conflicts = idx.register(y, TxnId(5), true, s(4, 5), c(7, 5), false);
        assert_eq!(conflicts, vec![OngoingWriter { tid: TxnId(3), noconflict: true }]);
    }

    #[test]
    fn ongoing_three_way_overlap_counts_pairs_once() {
        let mut idx = OngoingIndex::new();
        let mut pairs = 0;
        pairs += idx.register(Key(1), TxnId(1), true, s(1, 1), c(4, 1), false).len();
        pairs += idx.register(Key(1), TxnId(2), true, s(2, 2), c(5, 2), false).len();
        pairs += idx.register(Key(1), TxnId(3), true, s(3, 3), c(6, 3), false).len();
        assert_eq!(pairs, 3, "each of the 3 pairs exactly once");
    }

    #[test]
    fn ongoing_silent_registration_reports_nothing() {
        let mut idx = OngoingIndex::new();
        idx.register(Key(1), TxnId(1), true, s(1, 1), c(4, 1), false);
        let conflicts = idx.register(Key(1), TxnId(2), false, s(2, 2), c(5, 2), true);
        assert!(conflicts.is_empty());
        // But the silent registration is still visible to later arrivals.
        let conflicts = idx.register(Key(1), TxnId(3), true, s(3, 3), c(6, 3), false);
        assert_eq!(
            conflicts,
            vec![
                OngoingWriter { tid: TxnId(1), noconflict: true },
                OngoingWriter { tid: TxnId(2), noconflict: false }
            ],
            "the silent registration's level flag survives"
        );
    }

    #[test]
    fn ongoing_different_keys_never_conflict() {
        let mut idx = OngoingIndex::new();
        idx.register(Key(1), TxnId(1), true, s(1, 1), c(5, 1), false);
        let conflicts = idx.register(Key(2), TxnId(2), true, s(2, 2), c(6, 2), false);
        assert!(conflicts.is_empty());
    }
}
