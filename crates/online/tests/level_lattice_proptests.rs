//! Lattice-monotonicity property tests: for every anomaly injector and
//! seed, the *set of violation kinds* the online checker detects at a
//! level `L` is a subset of what it detects at any comparable stronger
//! level `L' ≥ L` — on the axes the two levels share.
//!
//! Which pairs are comparable is exactly `IsolationLevel`'s partial
//! order (`RC < RA < SI` and `RC < SER`; `SI`/`SER` and `RA`/`SER` are
//! incomparable — the read anchors differ, so neither EXT set contains
//! the other: start-side clock skew is EXT at SI and invisible at SER,
//! write skew the reverse). On comparable pairs the subset property
//! covers every axis: INT and collection integrity are
//! level-independent; RC's membership EXT accepts whatever a stronger
//! frontier EXT accepts (the frontier *is* a member); RC's
//! commit-ordered SESSION accepts whatever the snapshot-ordered one
//! does (Eq. 1 chains `commit ≥ start ≥ last_cts`, strictly on
//! collision-free histories); and NOCONFLICT only exists at SI, so the
//! subset is trivial from below. Across *every* pair — comparable or
//! not — the INT and INTEGRITY kind sets must be *equal*, because
//! those predicates are byte-identical at all levels.
//!
//! Comparing *kind sets* (not violation multisets) makes the property
//! robust to per-level differences in how many instances of one class
//! fire, while still catching any checker whose weaker level invents a
//! violation class its stronger sibling cannot see.

use aion_online::{feed_plan, run_plan, FeedConfig, OnlineChecker};
use aion_storage::Anomaly;
use aion_types::{AxiomKind, FxHashSet, History, IsolationLevel};
use aion_workload::{generate_history, WorkloadSpec};
use proptest::prelude::*;

fn base(seed: u64) -> History {
    let spec = WorkloadSpec::default()
        .with_txns(240)
        .with_sessions(12)
        .with_ops_per_txn(6)
        .with_keys(48)
        .with_ts_stride(16)
        .with_seed(seed);
    generate_history(&spec, IsolationLevel::Si)
}

fn kinds_at(h: &History, level: IsolationLevel) -> FxHashSet<AxiomKind> {
    let plan = feed_plan(h, &FeedConfig::default());
    let ck = OnlineChecker::builder().level(level).build().expect("in-memory session");
    run_plan(ck, &plan).outcome.report.violations.iter().map(|v| v.kind()).collect()
}

/// Every axiom axis: on comparable pairs, detection at the weaker
/// level must be a subset of detection at the stronger one across all
/// of these.
const ALL_AXES: &[AxiomKind] = &[
    AxiomKind::Session,
    AxiomKind::Int,
    AxiomKind::Ext,
    AxiomKind::NoConflict,
    AxiomKind::Integrity,
];

/// The level-independent axes: identical predicates at every level, so
/// detection must be *equal* across any pair, comparable or not.
const STABLE_AXES: &[AxiomKind] = &[AxiomKind::Int, AxiomKind::Integrity];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The monotonicity property itself, over every injector.
    #[test]
    fn detection_is_monotone_along_the_lattice(seed in 0u64..500, base_seed in 0u64..4) {
        let valid = base(7 + base_seed);
        let mut histories: Vec<(String, History)> = vec![("none".into(), valid.clone())];
        for &a in Anomaly::ALL {
            let mut h = valid.clone();
            if a.inject(&mut h, 0.3, seed) > 0 {
                histories.push((a.name().into(), h));
            }
        }
        for (name, h) in &histories {
            let detected: Vec<(IsolationLevel, FxHashSet<AxiomKind>)> =
                IsolationLevel::ALL.iter().map(|&l| (l, kinds_at(h, l))).collect();
            for (weak, weak_kinds) in &detected {
                for (strong, strong_kinds) in &detected {
                    if weak.partial_cmp(strong) == Some(std::cmp::Ordering::Less) {
                        for axis in ALL_AXES {
                            prop_assert!(
                                !weak_kinds.contains(axis) || strong_kinds.contains(axis),
                                "{name}: {axis} detected at {weak} but not at {strong} \
                                 (weak {weak_kinds:?}, strong {strong_kinds:?})"
                            );
                        }
                    } else {
                        // Incomparable (or reversed) pairs still share
                        // the level-independent axes exactly.
                        for axis in STABLE_AXES {
                            prop_assert!(
                                weak_kinds.contains(axis) == strong_kinds.contains(axis),
                                "{name}: {axis} differs between {weak} and {strong}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// A valid SI-executed history must be clean at SI and everything
    /// below it — the "valid histories stay valid downward" face of the
    /// same lattice.
    #[test]
    fn valid_histories_are_clean_at_and_below_their_level(base_seed in 0u64..8) {
        let valid = base(100 + base_seed);
        for &level in &[
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::Si,
        ] {
            let kinds = kinds_at(&valid, level);
            prop_assert!(kinds.is_empty(), "valid SI history dirty at {level}: {kinds:?}");
        }
    }
}
