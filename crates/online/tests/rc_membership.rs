//! RC hot-path regressions for the committed-membership index and the
//! batched feed:
//!
//! * the index-backed membership EXT predicate must be behaviorally
//!   invisible — every level still agrees with its offline CHRONOS
//!   oracle (the old chain-walk semantics), and turning GC on (which now
//!   prunes the frontier the old latch kept resident, and compacts the
//!   summaries) changes no verdict;
//! * [`MembershipIndex`] agrees with a brute-force model under random
//!   record/withdraw/compact sequences;
//! * `feed_batch` is event-identical to per-arrival `feed` on the single
//!   checker, and `receive_batch` outcome-equivalent on the sharded one.

use aion_core::{check_ra_report, check_rc_report, check_ser_report, check_si_report};
use aion_online::{AionConfig, MembershipIndex, OnlineChecker, OnlineGcPolicy, ShardedChecker};
use aion_types::{
    AxiomKind, CheckReport, Checker, EventKey, History, Key, Outcome, SessionId, Snapshot,
    SplitMix64, Timestamp, Transaction, TxnId, Value,
};
use aion_workload::{generate_history, IsolationLevel, KeyDist, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (30usize..120, 1usize..8, 1usize..6, 0.0f64..1.0, 2u64..30, 0u64..500).prop_map(
        |(txns, sessions, ops, reads, keys, seed)| {
            WorkloadSpec::default()
                .with_txns(txns)
                .with_sessions(sessions)
                .with_ops_per_txn(ops)
                .with_read_ratio(reads)
                .with_keys(keys)
                .with_seed(seed)
                .with_dist(KeyDist::Uniform)
        },
    )
}

/// A random arrival order that preserves per-session order (AION's
/// input assumption).
fn session_respecting_shuffle(h: &History, seed: u64) -> Vec<Transaction> {
    let mut rng = SplitMix64::new(seed);
    let mut queues: Vec<(SessionId, Vec<usize>, usize)> =
        h.sessions().into_iter().map(|(sid, idxs)| (sid, idxs, 0)).collect();
    queues.sort_by_key(|(sid, _, _)| *sid);
    let mut out = Vec::with_capacity(h.len());
    let mut live: Vec<usize> = (0..queues.len()).collect();
    while !live.is_empty() {
        let pick = rng.below(live.len() as u64) as usize;
        let qi = live[pick];
        let (_, idxs, pos) = &mut queues[qi];
        out.push(h.txns[idxs[*pos]].clone());
        *pos += 1;
        if *pos == idxs.len() {
            live.swap_remove(pick);
        }
    }
    out
}

fn flip_one_read(h: &mut History) {
    'outer: for t in h.txns.iter_mut() {
        for op in t.ops.iter_mut() {
            if let aion_types::Op::Read { value, .. } = op {
                *value = Snapshot::Scalar(Value(u64::MAX - 3));
                break 'outer;
            }
        }
    }
}

fn run_online(arrivals: &[Transaction], cfg: AionConfig) -> Outcome {
    let mut ck = OnlineChecker::new(cfg);
    for (i, txn) in arrivals.iter().enumerate() {
        ck.tick(i as u64);
        ck.receive(txn.clone(), i as u64);
    }
    ck.finish()
}

fn counts(r: &CheckReport) -> [usize; 5] {
    [
        r.count(AxiomKind::Session),
        r.count(AxiomKind::Int),
        r.count(AxiomKind::Ext),
        r.count(AxiomKind::NoConflict),
        r.count(AxiomKind::Integrity),
    ]
}

fn violation_set(o: &Outcome) -> Vec<String> {
    let mut v: Vec<String> = o.report.violations.iter().map(|x| format!("{x:?}")).collect();
    v.sort_unstable();
    v
}

/// An offline reference oracle for one level.
type Oracle = fn(&History) -> CheckReport;

const LEVELS: [(IsolationLevel, Oracle); 4] = [
    (IsolationLevel::ReadCommitted, check_rc_report),
    (IsolationLevel::ReadAtomic, check_ra_report),
    (IsolationLevel::Si, check_si_report),
    (IsolationLevel::Ser, check_ser_report),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every level agrees with its offline CHRONOS oracle on random and
    /// anomaly-injected histories, in order and shuffled. At RC this
    /// pins the index-backed membership predicate against the chain-walk
    /// semantics the oracle still uses.
    #[test]
    fn every_level_matches_its_offline_oracle(
        spec in arb_spec(),
        level_idx in 0usize..4,
        corrupt in any::<bool>(),
        shuffle_seed in 0u64..1000,
    ) {
        let (level, oracle) = LEVELS[level_idx];
        let mut h = generate_history(&spec, level);
        if corrupt {
            flip_one_read(&mut h);
        }
        let offline = counts(&oracle(&h));
        let cfg = || AionConfig::builder().kind(h.kind).level(level).config();
        let in_order = run_online(&h.txns, cfg());
        prop_assert_eq!(counts(&in_order.report), offline, "in-order vs oracle at {:?}", level);
        let shuffled = session_respecting_shuffle(&h, shuffle_seed);
        let out_of_order = run_online(&shuffled, cfg());
        prop_assert_eq!(counts(&out_of_order.report), offline, "shuffled vs oracle at {:?}", level);
    }

    /// GC pressure — tiny resident cap, short timeouts so finalization
    /// and spilling fire mid-stream — changes no RC or mixed-policy
    /// verdict. Pre-fix this held only because the `has_committed_ext`
    /// latch made GC a no-op for these policies; now the frontier really
    /// prunes and the compacted membership summaries must carry the
    /// stale-read answers alone.
    #[test]
    fn gc_is_invisible_to_committed_predicate_levels(
        spec in arb_spec(),
        mixed in any::<bool>(),
        corrupt in any::<bool>(),
        shuffle_seed in 0u64..1000,
    ) {
        let mut h = generate_history(&spec, IsolationLevel::ReadCommitted);
        if corrupt {
            flip_one_read(&mut h);
        }
        let shuffled = session_respecting_shuffle(&h, shuffle_seed);
        let base = if mixed {
            // A mixed policy keeps the committed-EXT dispatch live next
            // to snapshot-anchored sessions.
            AionConfig::builder()
                .kind(h.kind)
                .levels(aion_types::LevelPolicy::per_session(
                    [(SessionId(0), IsolationLevel::Si)],
                    IsolationLevel::ReadCommitted,
                ))
                .ext_timeout_ms(5)
                .config()
        } else {
            AionConfig::builder()
                .kind(h.kind)
                .level(IsolationLevel::ReadCommitted)
                .ext_timeout_ms(5)
                .config()
        };
        let no_gc = run_online(&shuffled, base.clone());
        for gc in [OnlineGcPolicy::Checking { max_txns: 8 }, OnlineGcPolicy::Full { max_txns: 8 }] {
            let mut cfg = base.clone();
            cfg.gc = gc;
            let gced = run_online(&shuffled, cfg);
            prop_assert_eq!(
                counts(&no_gc.report),
                counts(&gced.report),
                "verdicts changed under {:?} (mixed={})",
                gc,
                mixed
            );
            prop_assert_eq!(violation_set(&no_gc), violation_set(&gced));
        }
    }
}

// ------------------------------------------------------- index vs model

#[derive(Debug, Clone)]
enum IdxOp {
    /// Record value `v` for key `k` at commit ts `t`, optionally
    /// withdrawing `prev` at the same event (a cascade revision).
    Record { k: u8, t: u64, v: u8, prev: Option<u8> },
    /// GC pass: compact everything strictly below horizon `h`.
    Compact { h: u64 },
    /// Membership query: any committed `v` of `k` strictly before
    /// `anchor`?
    Query { k: u8, anchor: u64, v: u8 },
}

fn arb_idx_op() -> impl Strategy<Value = IdxOp> {
    prop_oneof![
        (0u8..4, 1u64..60, 0u8..5, any::<bool>(), 0u8..5)
            .prop_map(|(k, t, v, some, p)| IdxOp::Record { k, t, v, prev: some.then_some(p) }),
        (1u64..60).prop_map(|h| IdxOp::Compact { h }),
        (0u8..4, 1u64..70, 0u8..5).prop_map(|(k, anchor, v)| IdxOp::Query { k, anchor, v }),
        (0u8..4, 1u64..70, 0u8..5).prop_map(|(k, anchor, v)| IdxOp::Query { k, anchor, v }),
    ]
}

fn ev(ts: u64) -> EventKey {
    EventKey::commit(Timestamp(ts), TxnId(ts))
}

fn scalar(v: u8) -> Snapshot {
    Snapshot::Scalar(Value(v as u64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The index answers exactly like a brute-force list of live
    /// `(key, event, value)` triples, through withdrawals and GC
    /// compaction. Withdrawals below the running compaction horizon are
    /// suppressed — the checker never produces them (prune horizons are
    /// chosen below every live writer anchor), and `compact_below`'s
    /// collapse-to-minimum is only sound under that invariant.
    #[test]
    fn membership_index_matches_brute_force(ops in prop::collection::vec(arb_idx_op(), 1..150)) {
        let mut real = MembershipIndex::new();
        let mut model: Vec<(u8, u64, u8)> = Vec::new();
        let mut hmax = 0u64;
        for op in ops {
            match op {
                IdxOp::Record { k, t, v, prev } => {
                    let prev = if t < hmax { None } else { prev };
                    if let Some(pv) = prev {
                        if pv != v {
                            model.retain(|&(mk, mt, mv)| !(mk == k && mt == t && mv == pv));
                        }
                    }
                    if !model.contains(&(k, t, v)) {
                        model.push((k, t, v));
                    }
                    let prev_snap = prev.map(scalar);
                    real.record(Key(k as u64), ev(t), &scalar(v), prev_snap.as_ref());
                    prop_assert!(real.len() <= model.len(), "index may only be smaller");
                }
                IdxOp::Compact { h } => {
                    hmax = hmax.max(h);
                    real.compact_below(ev(h));
                }
                IdxOp::Query { k, anchor, v } => {
                    let want = model.iter().any(|&(mk, mt, mv)| mk == k && mv == v && mt < anchor);
                    let got = real.contains_before(Key(k as u64), ev(anchor), &scalar(v));
                    prop_assert_eq!(got, want, "query ({}, <{}, {}) after horizon {}", k, anchor, v, hmax);
                }
            }
        }
    }
}

// ----------------------------------------------------------- batched feed

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Checker::feed_batch` on the single checker produces the exact
    /// per-arrival event stream and outcome of looping `feed`, for any
    /// chunking of the arrivals.
    #[test]
    fn single_feed_batch_is_event_identical(
        spec in arb_spec(),
        corrupt in any::<bool>(),
        chunk in 1usize..20,
        shuffle_seed in 0u64..1000,
    ) {
        let mut h = generate_history(&spec, IsolationLevel::ReadCommitted);
        if corrupt {
            flip_one_read(&mut h);
        }
        let arrivals = session_respecting_shuffle(&h, shuffle_seed);
        let build = || {
            OnlineChecker::builder()
                .kind(h.kind)
                .level(IsolationLevel::ReadCommitted)
                .ext_timeout_ms(3)
                .events(true)
                .build()
                .unwrap()
        };

        let mut a = build();
        let mut ea = Vec::new();
        for (i, txn) in arrivals.iter().enumerate() {
            ea.extend(Checker::feed(&mut a, txn.clone(), i as u64));
        }
        ea.extend(a.tick(u64::MAX));

        let mut b = build();
        let mut eb = Vec::new();
        let timed: Vec<(Transaction, u64)> =
            arrivals.iter().enumerate().map(|(i, t)| (t.clone(), i as u64)).collect();
        for part in timed.chunks(chunk) {
            eb.extend(Checker::feed_batch(&mut b, part.to_vec()));
        }
        eb.extend(b.tick(u64::MAX));

        prop_assert_eq!(ea, eb, "event streams diverge at chunk size {}", chunk);
        let (oa, ob) = (a.finish(), b.finish());
        prop_assert_eq!(violation_set(&oa), violation_set(&ob));
        prop_assert_eq!(oa.stats, ob.stats);
    }

    /// `ShardedChecker::receive_batch` — one coordinator message per
    /// shard per batch — reaches the same final verdicts, violation
    /// sets, and flip totals as per-arrival `receive`, and both match
    /// the single checker.
    #[test]
    fn sharded_receive_batch_matches_per_arrival(
        spec in arb_spec(),
        chunk in 1usize..20,
        shuffle_seed in 0u64..1000,
    ) {
        let h = generate_history(&spec, IsolationLevel::ReadCommitted);
        let arrivals = session_respecting_shuffle(&h, shuffle_seed);
        let cfg = || {
            AionConfig::builder()
                .kind(h.kind)
                .level(IsolationLevel::ReadCommitted)
                .ext_timeout_ms(3)
        };
        let single = {
            let mut ck = OnlineChecker::new(cfg().config());
            for (i, txn) in arrivals.iter().enumerate() {
                ck.tick(i as u64);
                ck.receive(txn.clone(), i as u64);
            }
            ck.tick(u64::MAX);
            ck.finish()
        };
        for shards in [2usize, 3] {
            let mut per_arrival = ShardedChecker::new(cfg().shards(shards).config());
            for (i, txn) in arrivals.iter().enumerate() {
                per_arrival.tick(i as u64);
                per_arrival.receive(txn.clone(), i as u64);
            }
            per_arrival.tick(u64::MAX);
            let pa = per_arrival.finish();

            let mut batched = ShardedChecker::new(cfg().shards(shards).config());
            for (ci, part) in arrivals.chunks(chunk).enumerate() {
                let base = (ci * chunk) as u64;
                batched.tick(base);
                let parts: Vec<(Transaction, u64)> = part
                    .iter()
                    .enumerate()
                    .map(|(j, t)| (t.clone(), base + j as u64))
                    .collect();
                batched.receive_batch(parts);
            }
            batched.tick(u64::MAX);
            let ba = batched.finish();

            for (other, label) in [(&pa, "per-arrival"), (&single, "single")] {
                prop_assert_eq!(ba.is_ok(), other.is_ok(), "{} @ {} shards", label, shards);
                prop_assert_eq!(
                    counts(&ba.report),
                    counts(&other.report),
                    "{} @ {} shards",
                    label,
                    shards
                );
                prop_assert_eq!(
                    violation_set(&ba),
                    violation_set(other),
                    "{} @ {} shards",
                    label,
                    shards
                );
            }
            prop_assert_eq!(ba.txns, pa.txns);
            prop_assert_eq!(ba.stats.finalized, pa.stats.finalized);
            prop_assert_eq!(ba.flips.total_flips, pa.flips.total_flips);
        }
    }
}
