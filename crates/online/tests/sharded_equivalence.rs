//! Shard-vs-single equivalence: `ShardedChecker` must produce the same
//! final verdicts and violation sets as `OnlineChecker` for any shard
//! count, on valid *and* corrupted histories, in- and out-of-order.
//!
//! This is the soundness argument for the sharded architecture run as a
//! property: per-key axioms (INT/EXT/NOCONFLICT) are checked inside the
//! owning shard with exactly the single checker's code, and the global
//! checks (SESSION, integrity, Eq. (1)) run once in the coordinator, so
//! nothing may differ but event timing and work distribution.

use aion_online::{AionConfig, OnlineChecker, ShardedChecker};
use aion_types::{
    AxiomKind, Checker, History, Outcome, SessionId, Snapshot, SplitMix64, Transaction, Value,
};
use aion_workload::{generate_history, IsolationLevel, KeyDist, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (30usize..120, 1usize..8, 1usize..6, 0.0f64..1.0, 2u64..30, 0u64..500).prop_map(
        |(txns, sessions, ops, reads, keys, seed)| {
            WorkloadSpec::default()
                .with_txns(txns)
                .with_sessions(sessions)
                .with_ops_per_txn(ops)
                .with_read_ratio(reads)
                .with_keys(keys)
                .with_seed(seed)
                .with_dist(KeyDist::Uniform)
        },
    )
}

/// Corruption menu: each flag injects one class of violation so the
/// equivalence also covers the coordinator-owned global checks.
#[derive(Clone, Copy, Debug)]
struct Corruption {
    bogus_read: bool,
    duplicate_tid: bool,
    swapped_interval: bool,
    session_gap: bool,
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(bogus_read, duplicate_tid, swapped_interval, session_gap)| Corruption {
            bogus_read,
            duplicate_tid,
            swapped_interval,
            session_gap,
        },
    )
}

fn corrupt(h: &mut History, c: Corruption) {
    if c.bogus_read {
        'outer: for t in h.txns.iter_mut() {
            for op in t.ops.iter_mut() {
                if let aion_types::Op::Read { value, .. } = op {
                    *value = Snapshot::Scalar(Value(u64::MAX - 3));
                    break 'outer;
                }
            }
        }
    }
    let n = h.txns.len();
    if c.duplicate_tid && n > 2 {
        let tid = h.txns[0].tid;
        h.txns[n / 2].tid = tid;
    }
    if c.swapped_interval && n > 3 {
        let t = &mut h.txns[n / 3];
        if t.start_ts < t.commit_ts {
            std::mem::swap(&mut t.start_ts, &mut t.commit_ts);
        }
    }
    if c.session_gap && n > 4 {
        h.txns[3 * n / 4].sno += 7;
    }
}

/// A random arrival order that preserves per-session order (AION's
/// input assumption).
fn session_respecting_shuffle(h: &History, seed: u64) -> Vec<Transaction> {
    let mut rng = SplitMix64::new(seed);
    let mut queues: Vec<(SessionId, Vec<usize>, usize)> =
        h.sessions().into_iter().map(|(sid, idxs)| (sid, idxs, 0)).collect();
    queues.sort_by_key(|(sid, _, _)| *sid);
    let mut out = Vec::with_capacity(h.len());
    let mut live: Vec<usize> = (0..queues.len()).collect();
    while !live.is_empty() {
        let pick = rng.below(live.len() as u64) as usize;
        let qi = live[pick];
        let (_, idxs, pos) = &mut queues[qi];
        out.push(h.txns[idxs[*pos]].clone());
        *pos += 1;
        if *pos == idxs.len() {
            live.swap_remove(pick);
        }
    }
    out
}

fn drive<C: Checker>(mut ck: C, arrivals: &[Transaction]) -> Outcome {
    for (i, txn) in arrivals.iter().enumerate() {
        ck.tick(i as u64);
        ck.feed(txn.clone(), i as u64);
    }
    ck.tick(u64::MAX);
    ck.finish()
}

/// Violation multiset as sortable strings (Violation has no Ord).
fn violation_set(o: &Outcome) -> Vec<String> {
    let mut v: Vec<String> = o.report.violations.iter().map(|x| format!("{x:?}")).collect();
    v.sort_unstable();
    v
}

fn axiom_counts(o: &Outcome) -> [usize; 5] {
    [
        o.report.count(AxiomKind::Session),
        o.report.count(AxiomKind::Int),
        o.report.count(AxiomKind::Ext),
        o.report.count(AxiomKind::NoConflict),
        o.report.count(AxiomKind::Integrity),
    ]
}

fn assert_equivalent(
    single: &Outcome,
    sharded: &Outcome,
    shards: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(single.is_ok(), sharded.is_ok(), "verdict differs at {} shards", shards);
    prop_assert_eq!(
        axiom_counts(single),
        axiom_counts(sharded),
        "axiom counts differ at {} shards",
        shards
    );
    prop_assert_eq!(
        violation_set(single),
        violation_set(sharded),
        "violation sets differ at {} shards",
        shards
    );
    prop_assert_eq!(single.txns, sharded.txns, "txn counts differ at {} shards", shards);
    prop_assert_eq!(
        single.stats.finalized,
        sharded.stats.finalized,
        "finalized counts differ at {} shards",
        shards
    );
    prop_assert_eq!(
        single.flips.total_flips,
        sharded.flips.total_flips,
        "flip totals differ at {} shards",
        shards
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SI: same history, same plan, N ∈ {1..4} shards — identical final
    /// verdicts and violation sets.
    #[test]
    fn sharded_matches_single_si(
        spec in arb_spec(),
        corruption in arb_corruption(),
        shuffle_seed in 0u64..1000,
    ) {
        let mut h = generate_history(&spec, IsolationLevel::Si);
        corrupt(&mut h, corruption);
        let arrivals = session_respecting_shuffle(&h, shuffle_seed);
        let single = drive(
            OnlineChecker::new(AionConfig::builder().kind(h.kind).config()),
            &arrivals,
        );
        for shards in 1..=4usize {
            let sharded = drive(
                ShardedChecker::new(
                    AionConfig::builder().kind(h.kind).shards(shards).config(),
                ),
                &arrivals,
            );
            assert_equivalent(&single, &sharded, shards)?;
        }
    }

    /// SER: an SI-level history (rich in SER violations) through
    /// AION-SER, single vs sharded.
    #[test]
    fn sharded_matches_single_ser(
        spec in arb_spec(),
        corruption in arb_corruption(),
        shuffle_seed in 0u64..1000,
    ) {
        let mut h = generate_history(&spec, IsolationLevel::Si);
        corrupt(&mut h, corruption);
        let arrivals = session_respecting_shuffle(&h, shuffle_seed);
        let cfg = || AionConfig::builder().kind(h.kind).level(IsolationLevel::Ser);
        let single = drive(OnlineChecker::new(cfg().config()), &arrivals);
        for shards in [2usize, 4] {
            let sharded =
                drive(ShardedChecker::new(cfg().shards(shards).config()), &arrivals);
            assert_equivalent(&single, &sharded, shards)?;
        }
    }

    /// Short EXT timeouts: finalization fires mid-stream on both sides,
    /// freezing verdicts at the same (virtual) points.
    #[test]
    fn sharded_matches_single_with_midstream_finalization(
        spec in arb_spec(),
        shuffle_seed in 0u64..1000,
    ) {
        let h = generate_history(&spec, IsolationLevel::Si);
        let arrivals = session_respecting_shuffle(&h, shuffle_seed);
        let cfg = || AionConfig::builder().kind(h.kind).ext_timeout_ms(3);
        let single = drive(OnlineChecker::new(cfg().config()), &arrivals);
        for shards in [2usize, 3] {
            let sharded =
                drive(ShardedChecker::new(cfg().shards(shards).config()), &arrivals);
            assert_equivalent(&single, &sharded, shards)?;
        }
    }
}

/// Timestamps on the deterministic bench workload also agree — a fixed
/// smoke case so failures here are immediately reproducible without
/// proptest shrinking.
#[test]
fn bench_workload_smoke_equivalence() {
    let spec = WorkloadSpec::default().with_txns(2_000).with_sessions(16).with_ops_per_txn(8);
    let h = generate_history(&spec, IsolationLevel::Si);
    let plan = aion_online::feed_plan(&h, &aion_online::FeedConfig::default());
    let single =
        aion_online::run_plan(OnlineChecker::builder().kind(h.kind).build().unwrap(), &plan);
    for shards in [1usize, 2, 4] {
        let sharded = aion_online::run_plan(
            OnlineChecker::builder().kind(h.kind).shards(shards).build_sharded().unwrap(),
            &plan,
        );
        assert_eq!(single.outcome.is_ok(), sharded.outcome.is_ok());
        assert_eq!(
            single.outcome.report.len(),
            sharded.outcome.report.len(),
            "violation counts differ at {shards} shards"
        );
        assert_eq!(single.outcome.flips.total_flips, sharded.outcome.flips.total_flips);
        assert_eq!(sharded.processed, plan.len());
        // The sharded run surfaces every finalization on the merged
        // stream exactly once.
        assert_eq!(
            sharded.finalization_events(),
            single.finalization_events(),
            "merged ExtFinalized events must match the single checker's"
        );
    }
}
