//! Property tests for the online checker and its substrates:
//!
//! * the versioned map agrees with a naive model;
//! * the `ongoing` index agrees with brute-force interval overlap;
//! * AION's verdicts are invariant under arrival order (the heart of the
//!   online/offline equivalence argument, paper Appendix D) and under the
//!   step-③ ablation;
//! * AION agrees with CHRONOS on arbitrary (valid and corrupted) histories.

use aion_core::check_si_report;
use aion_online::{AionConfig, OnlineChecker, OnlineGcPolicy, VersionedMap};
use aion_types::{
    AxiomKind, DataKind, EventKey, FxHashMap, History, Key, SessionId, Snapshot, SplitMix64,
    Timestamp, Transaction, TxnId, Value,
};
use aion_workload::{generate_history, IsolationLevel, KeyDist, WorkloadSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

// ---------------------------------------------------------------- substrates

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, u64, i32),
    GetBefore(u8, u64),
    NextAfter(u8, u64),
    PruneBelow(u64),
}

fn arb_map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u8>(), 1u64..200, any::<i32>()).prop_map(|(k, t, v)| MapOp::Insert(k % 6, t, v)),
        (any::<u8>(), 1u64..200).prop_map(|(k, t)| MapOp::GetBefore(k % 6, t)),
        (any::<u8>(), 1u64..200).prop_map(|(k, t)| MapOp::NextAfter(k % 6, t)),
        (1u64..200).prop_map(MapOp::PruneBelow),
    ]
}

fn ev(ts: u64) -> EventKey {
    EventKey::commit(Timestamp(ts), TxnId(ts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// VersionedMap behaves like a per-key ordered map, including after
    /// pruning (which must keep each key's base version).
    #[test]
    fn versioned_map_matches_model(ops in prop::collection::vec(arb_map_op(), 1..120)) {
        let mut real: VersionedMap<i32> = VersionedMap::new();
        let mut model: FxHashMap<Key, BTreeMap<EventKey, i32>> = FxHashMap::default();
        for op in ops {
            match op {
                MapOp::Insert(k, t, v) => {
                    real.insert(Key(k as u64), ev(t), v);
                    model.entry(Key(k as u64)).or_default().insert(ev(t), v);
                }
                MapOp::GetBefore(k, t) => {
                    let got = real.get_before(Key(k as u64), ev(t)).map(|(e, v)| (e, *v));
                    let want = model
                        .get(&Key(k as u64))
                        .and_then(|c| c.range(..ev(t)).next_back())
                        .map(|(e, v)| (*e, *v));
                    prop_assert_eq!(got, want);
                }
                MapOp::NextAfter(k, t) => {
                    let got = real.next_after(Key(k as u64), ev(t));
                    let want = model
                        .get(&Key(k as u64))
                        .and_then(|c| c.range(ev(t)..).find(|(e, _)| **e != ev(t)))
                        .map(|(e, _)| *e);
                    prop_assert_eq!(got, want);
                }
                MapOp::PruneBelow(t) => {
                    real.prune_below(ev(t));
                    for chain in model.values_mut() {
                        if let Some((base, _)) = chain.range(..ev(t)).next_back() {
                            let base = *base;
                            chain.retain(|e, _| *e >= base);
                        }
                    }
                    model.retain(|_, c| !c.is_empty());
                }
            }
            prop_assert_eq!(real.len(), model.values().map(BTreeMap::len).sum::<usize>());
        }
    }

    /// OngoingIndex returns exactly the brute-force interval overlaps.
    #[test]
    fn ongoing_index_matches_brute_force(
        intervals in prop::collection::vec((1u64..50, 1u64..20, 0u8..3), 1..25),
    ) {
        use aion_online::index::OngoingIndex;
        let mut idx = OngoingIndex::new();
        // (key, tid, start, commit)
        let mut seen: Vec<(Key, u64, u64, u64)> = Vec::new();
        for (i, (s_raw, len, k)) in intervals.into_iter().enumerate() {
            let tid = (i + 1) as u64;
            // Unique timestamps per transaction: spread by tid.
            let s = s_raw * 1000 + tid;
            let c = s + len * 1000;
            let key = Key(k as u64);
            let got = idx.register(
                key,
                TxnId(tid),
                true,
                EventKey::start(Timestamp(s), TxnId(tid)),
                EventKey::commit(Timestamp(c), TxnId(tid)),
                false,
            );
            let mut want: Vec<aion_online::index::OngoingWriter> = seen
                .iter()
                .filter(|(pk, _, ps, pc)| *pk == key && *ps <= c && s <= *pc)
                .map(|(_, pt, _, _)| aion_online::index::OngoingWriter {
                    tid: TxnId(*pt),
                    noconflict: true,
                })
                .collect();
            want.sort_unstable_by_key(|w| w.tid);
            prop_assert_eq!(got, want, "interval ({},{}) on {:?}", s, c, key);
            seen.push((key, tid, s, c));
        }
    }
}

// ------------------------------------------------------------------ checkers

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (30usize..150, 1usize..8, 1usize..6, 0.0f64..1.0, 2u64..30, 0u64..500).prop_map(
        |(txns, sessions, ops, reads, keys, seed)| {
            WorkloadSpec::default()
                .with_txns(txns)
                .with_sessions(sessions)
                .with_ops_per_txn(ops)
                .with_read_ratio(reads)
                .with_keys(keys)
                .with_seed(seed)
                .with_dist(KeyDist::Uniform)
        },
    )
}

/// A random arrival order that preserves per-session order (AION's input
/// assumption): repeatedly pick a random session and emit its next txn.
fn session_respecting_shuffle(h: &History, seed: u64) -> Vec<Transaction> {
    let mut rng = SplitMix64::new(seed);
    let sessions = h.sessions();
    let mut queues: Vec<(SessionId, Vec<usize>, usize)> =
        sessions.into_iter().map(|(sid, idxs)| (sid, idxs, 0)).collect();
    queues.sort_by_key(|(sid, _, _)| *sid);
    let mut out = Vec::with_capacity(h.len());
    let mut live: Vec<usize> = (0..queues.len()).collect();
    while !live.is_empty() {
        let pick = rng.below(live.len() as u64) as usize;
        let qi = live[pick];
        let (_, idxs, pos) = &mut queues[qi];
        out.push(h.txns[idxs[*pos]].clone());
        *pos += 1;
        if *pos == idxs.len() {
            live.swap_remove(pick);
        }
    }
    out
}

fn run_online(arrivals: &[Transaction], cfg: AionConfig) -> aion_online::AionOutcome {
    let mut ck = OnlineChecker::new(cfg);
    for (i, txn) in arrivals.iter().enumerate() {
        ck.tick(i as u64);
        ck.receive(txn.clone(), i as u64);
    }
    ck.finish()
}

fn counts(r: &aion_types::CheckReport) -> [usize; 5] {
    [
        r.count(AxiomKind::Session),
        r.count(AxiomKind::Int),
        r.count(AxiomKind::Ext),
        r.count(AxiomKind::NoConflict),
        r.count(AxiomKind::Integrity),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// AION's final verdicts are independent of the arrival order and
    /// agree with CHRONOS, on histories with injected corruption.
    #[test]
    fn aion_verdicts_invariant_under_arrival_order(
        spec in arb_spec(),
        corrupt in any::<bool>(),
        shuffle_seed in 0u64..1000,
    ) {
        let mut h = generate_history(&spec, IsolationLevel::Si);
        if corrupt {
            // Flip one read to a bogus value.
            'outer: for t in h.txns.iter_mut() {
                for op in t.ops.iter_mut() {
                    if let aion_types::Op::Read { value, .. } = op {
                        *value = Snapshot::Scalar(Value(u64::MAX - 3));
                        break 'outer;
                    }
                }
            }
        }
        let offline = counts(&check_si_report(&h));

        let in_order = run_online(&h.txns, AionConfig::builder().kind(h.kind).config());
        prop_assert_eq!(counts(&in_order.report), offline, "in-order vs offline");

        let shuffled = session_respecting_shuffle(&h, shuffle_seed);
        let out_of_order =
            run_online(&shuffled, AionConfig::builder().kind(h.kind).config());
        prop_assert_eq!(counts(&out_of_order.report), offline, "shuffled vs offline");
    }

    /// The step-③ re-check bound is a pure optimization: disabling it
    /// (naive full re-scan) changes nothing but the work done.
    #[test]
    fn naive_recheck_ablation_preserves_verdicts(
        spec in arb_spec(),
        shuffle_seed in 0u64..1000,
    ) {
        let h = generate_history(&spec, IsolationLevel::Si);
        let shuffled = session_respecting_shuffle(&h, shuffle_seed);
        let opt = run_online(&shuffled, AionConfig::builder().kind(h.kind).config());
        let naive = run_online(
            &shuffled,
            AionConfig::builder().kind(h.kind).naive_recheck(true).config(),
        );
        prop_assert_eq!(counts(&opt.report), counts(&naive.report));
        prop_assert!(naive.stats.reevaluations >= opt.stats.reevaluations);
    }

    /// GC (spill + reload) never changes verdicts, even with a tiny cap
    /// and out-of-order arrivals.
    #[test]
    fn gc_preserves_verdicts(spec in arb_spec(), shuffle_seed in 0u64..1000) {
        let h = generate_history(&spec, IsolationLevel::Si);
        let shuffled = session_respecting_shuffle(&h, shuffle_seed);
        // Short timeout so transactions finalize quickly and GC can run.
        let base = AionConfig::builder().kind(h.kind).ext_timeout_ms(5).config();
        let no_gc = run_online(&shuffled, base.clone());
        let gc = run_online(
            &shuffled,
            {
                let mut cfg = base;
                cfg.gc = OnlineGcPolicy::Full { max_txns: 10 };
                cfg
            },
        );
        prop_assert_eq!(counts(&no_gc.report), counts(&gc.report));
    }

    /// SER mode agrees with CHRONOS-SER regardless of arrival order.
    #[test]
    fn aion_ser_matches_chronos_ser(spec in arb_spec(), shuffle_seed in 0u64..1000) {
        let h = generate_history(&spec, IsolationLevel::Si); // SI history → SER violations
        let offline = counts(&aion_core::check_ser_report(&h));
        let shuffled = session_respecting_shuffle(&h, shuffle_seed);
        let online = run_online(
            &shuffled,
            AionConfig::builder().kind(h.kind).level(IsolationLevel::Ser).config(),
        );
        prop_assert_eq!(counts(&online.report), offline);
    }

    /// List histories: online equals offline under shuffling (exercises
    /// the append-cascade path).
    #[test]
    fn aion_list_matches_chronos(spec in arb_spec(), shuffle_seed in 0u64..1000) {
        let h = generate_history(
            &spec.with_kind(DataKind::List).with_read_ratio(0.4),
            IsolationLevel::Si,
        );
        let offline = counts(&check_si_report(&h));
        let shuffled = session_respecting_shuffle(&h, shuffle_seed);
        let online = run_online(&shuffled, AionConfig::builder().kind(h.kind).config());
        prop_assert_eq!(counts(&online.report), offline);
    }
}
