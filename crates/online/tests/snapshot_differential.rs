//! Checkpoint/restore differential properties: interrupting a session
//! at an arbitrary arrival boundary — checkpoint, drop the checker,
//! restore from the bytes — must change *nothing* observable. For the
//! single checker the guarantee is exact: the resumed session emits
//! byte-identical events and its final checkpoint is byte-identical to
//! the uninterrupted session's. For the sharded checker (whose event
//! interleaving is scheduling-dependent) the guarantee is the final
//! outcome and violation multiset, including across a shard-count
//! change (`restore_resharded`).
//!
//! This is the differential argument behind aion-serve's
//! checkpoint-survives-a-daemon-restart cycle, run as a property over
//! random workloads, injected anomalies, all isolation levels plus a
//! per-transaction mixed policy, and random cut points.

use aion_online::{OnlineChecker, ShardedChecker, SimSchedule};
use aion_types::{
    Checker, History, IsolationLevel, LevelPolicy, Outcome, SessionId, SplitMix64, Transaction,
};
use aion_workload::{generate_history, KeyDist, LevelMix, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (30usize..100, 1usize..8, 1usize..6, 0.0f64..1.0, 2u64..30, 0u64..500).prop_map(
        |(txns, sessions, ops, reads, keys, seed)| {
            WorkloadSpec::default()
                .with_txns(txns)
                .with_sessions(sessions)
                .with_ops_per_txn(ops)
                .with_read_ratio(reads)
                .with_keys(keys)
                .with_seed(seed)
                .with_dist(KeyDist::Uniform)
        },
    )
}

/// One anomaly injector per case, so restored sessions also resume
/// *mid-violation* (pending EXT windows, half-observed conflicts).
#[derive(Clone, Copy, Debug)]
enum Inject {
    None,
    LostUpdate,
    WriteSkew,
    ReadSkew,
    DirtyWrite,
    DuplicateTid,
}

fn arb_inject() -> impl Strategy<Value = Inject> {
    prop_oneof![
        Just(Inject::None),
        Just(Inject::LostUpdate),
        Just(Inject::WriteSkew),
        Just(Inject::ReadSkew),
        Just(Inject::DirtyWrite),
        Just(Inject::DuplicateTid),
    ]
}

fn inject(h: &mut History, what: Inject, seed: u64) {
    match what {
        Inject::None => {}
        Inject::LostUpdate => {
            aion_storage::inject_lost_update(h, 0.3, seed);
        }
        Inject::WriteSkew => {
            aion_storage::inject_write_skew(h, 0.3, seed);
        }
        Inject::ReadSkew => {
            aion_storage::inject_read_skew(h, 0.3, seed);
        }
        Inject::DirtyWrite => {
            aion_storage::inject_dirty_write(h, 0.3, seed);
        }
        Inject::DuplicateTid => {
            aion_storage::inject_duplicate_tid(h, 0.3, seed);
        }
    }
}

/// The checking policy under test: every uniform level, plus the
/// per-transaction mixed policy over a stamped four-way level mix.
#[derive(Clone, Copy, Debug)]
enum Policy {
    Uniform(IsolationLevel),
    Mixed,
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Uniform(IsolationLevel::ReadCommitted)),
        Just(Policy::Uniform(IsolationLevel::ReadAtomic)),
        Just(Policy::Uniform(IsolationLevel::Si)),
        Just(Policy::Uniform(IsolationLevel::Ser)),
        Just(Policy::Mixed),
    ]
}

impl Policy {
    fn level_policy(self) -> LevelPolicy {
        match self {
            Policy::Uniform(l) => LevelPolicy::Uniform(l),
            Policy::Mixed => LevelPolicy::per_txn(IsolationLevel::Si),
        }
    }

    /// A mixed policy only exercises the per-arrival dispatch if the
    /// history actually declares differing levels.
    fn prepare(self, h: &mut History, seed: u64) {
        if let Policy::Mixed = self {
            LevelMix::per_txn(1.0, 1.0, 1.0, 1.0).stamp(h, seed);
        }
    }
}

/// A random arrival order that preserves per-session order (AION's
/// input assumption) — same shuffle the shard-equivalence suite uses.
fn session_respecting_shuffle(h: &History, seed: u64) -> Vec<Transaction> {
    let mut rng = SplitMix64::new(seed);
    let mut queues: Vec<(SessionId, Vec<usize>, usize)> =
        h.sessions().into_iter().map(|(sid, idxs)| (sid, idxs, 0)).collect();
    queues.sort_by_key(|(sid, _, _)| *sid);
    let mut out = Vec::with_capacity(h.len());
    let mut live: Vec<usize> = (0..queues.len()).collect();
    while !live.is_empty() {
        let pick = rng.below(live.len() as u64) as usize;
        let qi = live[pick];
        let (_, idxs, pos) = &mut queues[qi];
        out.push(h.txns[idxs[*pos]].clone());
        *pos += 1;
        if *pos == idxs.len() {
            live.swap_remove(pick);
        }
    }
    out
}

/// What one run observes: every event from arrival `cut` onward (as
/// debug strings), the checkpoint bytes taken after the last arrival,
/// and the final outcome.
struct Observed {
    tail_events: Vec<String>,
    final_snapshot: Vec<u8>,
    outcome: Outcome,
}

/// Drive a single checker over the arrivals; when `interrupt` is set,
/// checkpoint at arrival boundary `cut`, drop the checker, and resume
/// from the bytes.
fn drive_single(
    policy: LevelPolicy,
    h: &History,
    arrivals: &[Transaction],
    cut: usize,
    interrupt: bool,
) -> Observed {
    let mut ck =
        OnlineChecker::builder().kind(h.kind).levels(policy).build().expect("open session");
    let mut tail_events = Vec::new();
    for (i, txn) in arrivals.iter().enumerate() {
        if interrupt && i == cut {
            let snap = ck.checkpoint().expect("checkpoint");
            drop(ck);
            ck = OnlineChecker::restore(&snap).expect("restore");
        }
        let now = i as u64;
        let mut evs = ck.tick(now);
        evs.extend(ck.feed(txn.clone(), now));
        if i >= cut {
            tail_events.extend(evs.iter().map(|e| format!("{e:?}")));
        }
    }
    let final_snapshot = ck.checkpoint().expect("final checkpoint");
    tail_events.extend(ck.tick(u64::MAX).iter().map(|e| format!("{e:?}")));
    Observed { tail_events, final_snapshot, outcome: ck.finish() }
}

/// Drive a sharded checker; when `restore_shards` is set, checkpoint at
/// `cut` and restore onto that many workers (possibly a different
/// count).
fn drive_sharded(
    policy: LevelPolicy,
    h: &History,
    arrivals: &[Transaction],
    shards: usize,
    cut: usize,
    restore_shards: Option<usize>,
) -> Outcome {
    let mut ck = OnlineChecker::builder()
        .kind(h.kind)
        .levels(policy)
        .shards(shards)
        .build_sharded()
        .expect("open session");
    for (i, txn) in arrivals.iter().enumerate() {
        if restore_shards == Some(shards) && i == cut {
            let snap = ck.checkpoint().expect("checkpoint");
            drop(ck);
            ck = ShardedChecker::restore(&snap).expect("restore");
        } else if let Some(n) = restore_shards.filter(|&n| n != shards) {
            if i == cut {
                let snap = ck.checkpoint().expect("checkpoint");
                drop(ck);
                ck = ShardedChecker::restore_resharded(&snap, n).expect("restore resharded");
            }
        }
        let now = i as u64;
        ck.tick(now);
        ck.feed(txn.clone(), now);
    }
    ck.tick(u64::MAX);
    ck.finish()
}

/// Violation multiset as sortable strings (Violation has no Ord).
fn violation_set(o: &Outcome) -> Vec<String> {
    let mut v: Vec<String> = o.report.violations.iter().map(|x| format!("{x:?}")).collect();
    v.sort_unstable();
    v
}

fn assert_same_outcome(a: &Outcome, b: &Outcome, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.is_ok(), b.is_ok(), "verdict differs: {}", what);
    prop_assert_eq!(violation_set(a), violation_set(b), "violation sets differ: {}", what);
    prop_assert_eq!(a.txns, b.txns, "txn counts differ: {}", what);
    prop_assert_eq!(a.stats.finalized, b.stats.finalized, "finalized counts differ: {}", what);
    prop_assert_eq!(a.flips.total_flips, b.flips.total_flips, "flip totals differ: {}", what);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Single checker, any level, any anomaly, any cut point: the
    /// interrupted run's post-cut events are byte-identical to the
    /// uninterrupted run's, and so is its final checkpoint.
    #[test]
    fn restored_single_checker_is_byte_identical(
        spec in arb_spec(),
        what in arb_inject(),
        policy in arb_policy(),
        shuffle_seed in 0u64..1000,
        cut_frac in 0.0f64..1.0,
    ) {
        let mut h = generate_history(&spec, IsolationLevel::Si);
        inject(&mut h, what, spec.seed.wrapping_add(1));
        policy.prepare(&mut h, 42);
        let arrivals = session_respecting_shuffle(&h, shuffle_seed);
        let cut = ((cut_frac * arrivals.len() as f64) as usize).min(arrivals.len());
        let lp = policy.level_policy();
        let plain = drive_single(lp.clone(), &h, &arrivals, cut, false);
        let resumed = drive_single(lp, &h, &arrivals, cut, true);
        prop_assert_eq!(
            &plain.tail_events, &resumed.tail_events,
            "post-restore events must be byte-identical (cut {})", cut
        );
        prop_assert_eq!(
            &plain.final_snapshot, &resumed.final_snapshot,
            "final checkpoints must be byte-identical (cut {})", cut
        );
        assert_same_outcome(&plain.outcome, &resumed.outcome, "single resume")?;
    }

    /// Sharded checker, N ∈ {1..4}: checkpoint/restore at any cut point
    /// preserves the final outcome and violation multiset; restoring
    /// onto a *different* shard count preserves them too.
    #[test]
    fn restored_sharded_checker_matches(
        spec in arb_spec(),
        what in arb_inject(),
        shards in 1usize..5,
        reshard in 1usize..5,
        shuffle_seed in 0u64..1000,
        cut_frac in 0.0f64..1.0,
    ) {
        let mut h = generate_history(&spec, IsolationLevel::Si);
        inject(&mut h, what, spec.seed.wrapping_add(1));
        let arrivals = session_respecting_shuffle(&h, shuffle_seed);
        let cut = ((cut_frac * arrivals.len() as f64) as usize).min(arrivals.len());
        let lp = LevelPolicy::Uniform(IsolationLevel::Si);
        let plain = drive_sharded(lp.clone(), &h, &arrivals, shards, cut, None);
        let resumed = drive_sharded(lp.clone(), &h, &arrivals, shards, cut, Some(shards));
        assert_same_outcome(&plain, &resumed, "sharded resume")?;
        let resharded = drive_sharded(lp, &h, &arrivals, shards, cut, Some(reshard));
        assert_same_outcome(&plain, &resharded, "resharded resume")?;
    }

    /// Snapshot under schedule: the sharded checkpoint is taken while a
    /// deterministic *adversarial* transport (deferred deliveries,
    /// dropped clock broadcasts, stalled workers — `SimSchedule`) is
    /// perturbing the coordinator conversation, and the restored run
    /// resumes under a *different* adversarial schedule. Verdict and
    /// violation multiset must still match the plain threaded run: a
    /// checkpoint cut is correct at *any* reachable coordinator state,
    /// not just the quiesced ones the threaded tests happen to visit.
    #[test]
    fn checkpoint_under_adversarial_schedule_matches(
        spec in arb_spec(),
        what in arb_inject(),
        shards in 2usize..5,
        reshard in 1usize..5,
        shuffle_seed in 0u64..1000,
        cut_frac in 0.0f64..1.0,
        sched_seed in 0u64..1_000_000,
    ) {
        let mut h = generate_history(&spec, IsolationLevel::Si);
        inject(&mut h, what, spec.seed.wrapping_add(1));
        let arrivals = session_respecting_shuffle(&h, shuffle_seed);
        let cut = ((cut_frac * arrivals.len() as f64) as usize).min(arrivals.len());
        let lp = LevelPolicy::Uniform(IsolationLevel::Si);
        let plain = drive_sharded(lp.clone(), &h, &arrivals, shards, cut, None);

        let mut ck = OnlineChecker::builder()
            .kind(h.kind)
            .levels(lp)
            .shards(shards)
            .build_sharded_sim(SimSchedule::pathological(sched_seed))
            .expect("open sim session");
        for (i, txn) in arrivals.iter().enumerate() {
            if i == cut {
                let snap = ck.checkpoint().expect("checkpoint under schedule");
                let _ = ck.finish(); // the interrupted process dies here
                ck = ShardedChecker::restore_resharded_sim(
                    &snap,
                    reshard,
                    SimSchedule::random(sched_seed ^ 0x5A5A),
                )
                .expect("restore resharded under schedule");
            }
            let now = i as u64;
            ck.tick(now);
            ck.feed(txn.clone(), now);
        }
        ck.tick(u64::MAX);
        let resumed = ck.finish();
        assert_same_outcome(&plain, &resumed, "adversarial-schedule resume")?;
    }

    /// Any truncation of a live mid-stream checkpoint is a typed error,
    /// never a panic and never a silently-wrong checker.
    #[test]
    fn truncated_snapshots_are_errors(
        spec in arb_spec(),
        shuffle_seed in 0u64..1000,
        trunc_frac in 0.0f64..1.0,
    ) {
        let h = generate_history(&spec, IsolationLevel::Si);
        let arrivals = session_respecting_shuffle(&h, shuffle_seed);
        let mut ck = OnlineChecker::builder().kind(h.kind).build().expect("open session");
        for (i, txn) in arrivals.iter().enumerate().take(arrivals.len() / 2) {
            ck.tick(i as u64);
            ck.feed(txn.clone(), i as u64);
        }
        let snap = ck.checkpoint().expect("checkpoint");
        let cut = ((trunc_frac * snap.len() as f64) as usize).min(snap.len() - 1);
        prop_assert!(
            OnlineChecker::restore(&snap[..cut]).is_err(),
            "truncation to {} of {} bytes must be a typed error", cut, snap.len()
        );
    }

    /// Flipping any single byte of a checkpoint must never panic: the
    /// restore either fails with a typed error, or (when the flip lands
    /// in a value field the codec cannot distinguish) yields a checker
    /// that still finishes without crashing.
    #[test]
    fn garbled_snapshots_never_panic(
        spec in arb_spec(),
        shuffle_seed in 0u64..1000,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..255,
    ) {
        let h = generate_history(&spec, IsolationLevel::Si);
        let arrivals = session_respecting_shuffle(&h, shuffle_seed);
        let mut ck = OnlineChecker::builder().kind(h.kind).build().expect("open session");
        for (i, txn) in arrivals.iter().enumerate().take(arrivals.len() / 2) {
            ck.tick(i as u64);
            ck.feed(txn.clone(), i as u64);
        }
        let mut snap = ck.checkpoint().expect("checkpoint");
        let pos = ((pos_frac * snap.len() as f64) as usize).min(snap.len() - 1);
        snap[pos] ^= flip;
        if let Ok(mut back) = OnlineChecker::restore(&snap) {
            back.tick(u64::MAX);
            let _ = back.finish();
        }
    }
}
