//! Property tests for the anomaly-injection matrix
//! (`aion_storage::anomalies`), checked against the online checker:
//!
//! * every injector is a strict no-op at rate 0;
//! * every injector is deterministic per `(history, rate, seed)`;
//! * the returned perturbation count is accurate: `0` iff the history
//!   is byte-identical;
//! * a run that reports `0` perturbations leaves the history
//!   verdict-identical under `OnlineChecker`;
//! * injectors compose with every application workload (TPC-C, RUBiS,
//!   Twitter), not just the synthetic KV mix;
//! * the level-tagged guarantees hold end to end: injected histories
//!   trip the expected [`ViolationKind`] (or stay clean) under the
//!   online checker at each level, across workloads and seeds.

use aion_online::{feed_plan, run_plan, FeedConfig, OnlineChecker};
use aion_storage::{Anomaly, Expected, SkewTarget};
use aion_types::{History, IsolationLevel as Level};
use aion_workload::apps::rubis::{rubis_templates, RubisParams};
use aion_workload::apps::tpcc::{tpcc_templates, TpccParams};
use aion_workload::apps::twitter::{twitter_templates, TwitterParams};
use aion_workload::{generate_history, run_templates, IsolationLevel, WorkloadSpec};
use proptest::prelude::*;

fn spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_txns(240)
        .with_sessions(12)
        .with_ops_per_txn(6)
        .with_keys(48)
        .with_ts_stride(16)
        .with_seed(seed)
}

/// A valid history from one of the four workload families.
fn history(workload: usize, level: IsolationLevel, seed: u64) -> History {
    let s = spec(seed);
    match workload % 4 {
        0 => generate_history(&s, level),
        1 => {
            let t = tpcc_templates(240, &TpccParams { warehouses: 2, ..TpccParams::default() });
            run_templates(&s, level, &t)
        }
        2 => {
            let t = rubis_templates(240, &RubisParams { users: 30, items: 40, seed: 42 });
            run_templates(&s, level, &t)
        }
        _ => {
            let t =
                twitter_templates(240, &TwitterParams { users: 40, ..TwitterParams::default() });
            run_templates(&s, level, &t)
        }
    }
}

fn verdict(h: &History, level: Level) -> Vec<aion_types::Violation> {
    let plan = feed_plan(h, &FeedConfig::default());
    let ck = OnlineChecker::builder().level(level).build().expect("in-memory session");
    run_plan(ck, &plan).outcome.report.violations
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rate 0 plants nothing and leaves the history byte-identical —
    /// and therefore trivially verdict-identical.
    #[test]
    fn rate_zero_is_a_strict_noop(workload in 0usize..4, seed in 0u64..1000) {
        let base = history(workload, IsolationLevel::Si, 7);
        for &a in Anomaly::ALL {
            let mut h = base.clone();
            prop_assert_eq!(a.inject(&mut h, 0.0, seed), 0, "{}", a.name());
            prop_assert_eq!(&h, &base, "{} mutated the history at rate 0", a.name());
        }
    }

    /// Same `(history, rate, seed)` → same perturbations, bit for bit.
    #[test]
    fn injection_is_deterministic(workload in 0usize..4, seed in 0u64..1000) {
        let base = history(workload, IsolationLevel::Si, 7);
        for &a in Anomaly::ALL {
            let (mut h1, mut h2) = (base.clone(), base.clone());
            let (n1, n2) = (a.inject(&mut h1, 0.3, seed), a.inject(&mut h2, 0.3, seed));
            prop_assert_eq!(n1, n2, "{}", a.name());
            prop_assert_eq!(&h1, &h2, "{} diverged under one seed", a.name());
        }
    }

    /// The returned count is accurate: zero iff untouched. (When an
    /// injector finds no candidates it must not leave half-applied
    /// edits behind.)
    #[test]
    fn count_is_accurate(workload in 0usize..4, seed in 0u64..1000, rate in 0.0f64..0.4) {
        let base = history(workload, IsolationLevel::Si, 11);
        for &a in Anomaly::ALL {
            let mut h = base.clone();
            let n = a.inject(&mut h, rate, seed);
            prop_assert_eq!(n == 0, h == base, "{}: count {} vs diff {}", a.name(), n, h != base);
        }
    }

    /// Zero reported perturbations ⇒ the online checker's verdict is
    /// unchanged (both levels).
    #[test]
    fn zero_perturbations_is_verdict_identical(workload in 0usize..4, seed in 0u64..400) {
        let base = history(workload, IsolationLevel::Si, 13);
        let base_si = verdict(&base, Level::Si);
        for &a in Anomaly::ALL {
            let mut h = base.clone();
            // Tiny rate: frequently plants nothing, which is the case
            // under test.
            if a.inject(&mut h, 0.01, seed) == 0 {
                prop_assert_eq!(&verdict(&h, Level::Si), &base_si, "{}", a.name());
            }
        }
    }

    /// The probabilistic collection-fault injectors keep histories
    /// structurally sound: unique timestamps and Eq. (1) under either
    /// skew target, at any rate/magnitude/seed.
    #[test]
    fn clock_skew_stays_well_formed(
        seed in 0u64..1000,
        rate in 0.0f64..1.0,
        magnitude in 1u64..64,
        commit_side in any::<bool>(),
    ) {
        let mut h = history(0, IsolationLevel::Si, 17);
        let target = if commit_side { SkewTarget::Commit } else { SkewTarget::Start };
        aion_storage::inject_clock_skew_at(&mut h, target, rate, magnitude, seed);
        for t in &h.txns {
            prop_assert!(t.start_ts <= t.commit_ts);
        }
        let mut ts: Vec<_> = Vec::new();
        for t in &h.txns {
            ts.push(t.start_ts);
            if t.commit_ts != t.start_ts {
                ts.push(t.commit_ts);
            }
        }
        let len = ts.len();
        ts.sort_unstable();
        ts.dedup();
        prop_assert_eq!(ts.len(), len, "timestamps must stay unique");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole guarantee, end to end: on any workload and seed,
    /// an injected history trips the tagged violation class — and the
    /// `Accept` cells stay completely clean — under the online checker
    /// at every level of the lattice.
    #[test]
    fn tagged_expectations_hold_under_online_checker(
        workload in 0usize..4,
        seed in 0u64..200,
    ) {
        for &level in IsolationLevel::ALL {
            // The base history must be valid *at the checked level*:
            // SER bases run the 2PL engine, every weaker level shares
            // the MVCC-SI execution (valid at SI ⇒ valid below it).
            let exec = if level == Level::Ser { Level::Ser } else { Level::Si };
            let base = history(workload, exec, 7);
            prop_assert!(
                verdict(&base, level).is_empty(),
                "base history must be clean at {level}"
            );
            for &a in Anomaly::ALL {
                let mut h = base.clone();
                if a.inject(&mut h, 0.3, seed) == 0 {
                    continue; // planting coverage is the conformance harness's job
                }
                let report = verdict(&h, level);
                match a.profile().expected_at(level) {
                    Expected::Accept => prop_assert!(
                        report.is_empty(),
                        "{} must stay clean at {level}: {report:?}",
                        a.name()
                    ),
                    Expected::Detect(kind) => prop_assert!(
                        report.iter().any(|v| v.kind() == kind),
                        "{} must trip {kind} at {level}: {report:?}",
                        a.name()
                    ),
                }
            }
        }
    }
}
