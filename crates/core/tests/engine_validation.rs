//! CHRONOS validated against the storage engines and workload generators:
//! the checker and the substrate were written independently, so agreement
//! is meaningful end-to-end evidence for both.

use aion_core::{check_si, check_si_consuming, check_si_report, ChronosOptions, GcPolicy};
use aion_storage::{inject_clock_skew, FaultPlan, MvccStore, SkewedHlcOracle};
use aion_types::{codec, AxiomKind, DataKind, Violation};
use aion_workload::{
    generate_faulty_history, generate_history, generate_templates, run_interleaved, IsolationLevel,
    KeyDist, WorkloadSpec,
};

fn base_spec() -> WorkloadSpec {
    WorkloadSpec::default().with_txns(3_000).with_sessions(16).with_ops_per_txn(8).with_keys(64)
}

#[test]
fn every_distribution_checks_clean() {
    for dist in [KeyDist::Uniform, KeyDist::Zipfian, KeyDist::Hotspot] {
        let h = generate_history(&base_spec().with_dist(dist), IsolationLevel::Si);
        let r = check_si_report(&h);
        assert!(r.is_ok(), "{dist:?}: {r}");
    }
}

#[test]
fn all_gc_policies_agree_on_large_history() {
    let h = generate_history(&base_spec(), IsolationLevel::Si);
    let reference = check_si(&h, &ChronosOptions::with_gc(GcPolicy::Never)).report;
    for gc in [GcPolicy::Fast, GcPolicy::EveryN(100), GcPolicy::EveryN(1000)] {
        let r = check_si(&h, &ChronosOptions::with_gc(gc)).report;
        assert_eq!(r.violations, reference.violations, "{gc:?}");
    }
}

#[test]
fn checking_survives_codec_roundtrip() {
    let h = generate_history(&base_spec(), IsolationLevel::Si);
    let bytes = codec::encode_history(&h);
    let loaded = codec::decode_history(&bytes).expect("decodes");
    let a = check_si_consuming(loaded, &ChronosOptions::default());
    let b = check_si(&h, &ChronosOptions::default());
    assert_eq!(a.report.violations, b.report.violations);
    assert_eq!(a.txns, b.txns);
}

#[test]
fn decentralized_clock_skew_is_caught() {
    // Paper Appendix A/B + §V-D: decentralized timestamps with skew cause
    // "snapshot unavailability" — a transaction can commit with a
    // timestamp *below* an earlier reader's snapshot, so the reader
    // provably missed a version it should have seen. With zero skew the
    // HLC oracle is as good as the centralized one; with skew, CHRONOS
    // must catch the fallout (the YugabyteDB clock-skew bug class).
    let spec = base_spec().with_txns(1_000);
    let templates = generate_templates(&spec);

    let healthy = SkewedHlcOracle::new(&[0, 0, 0]);
    let store = MvccStore::with_oracle(DataKind::Kv, Box::new(healthy));
    let h = run_interleaved(&store, &templates, spec.sessions, 3).history;
    let r = check_si_report(&h);
    assert!(r.is_ok(), "zero skew must be clean: {}", r.summary());

    let skewed = SkewedHlcOracle::new(&[0, 500, -500, 1_000]);
    let store = MvccStore::with_oracle(DataKind::Kv, Box::new(skewed));
    let h = run_interleaved(&store, &templates, spec.sessions, 3).history;
    let r = check_si_report(&h);
    assert!(!r.is_ok(), "skewed clocks must produce detectable violations");
    assert!(r.count(AxiomKind::Ext) > 0, "missed snapshots manifest as EXT: {}", r.summary());
}

#[test]
fn fault_classes_map_to_expected_axioms() {
    let spec = base_spec().with_txns(5_000);
    let lost = generate_faulty_history(
        &spec,
        FaultPlan { lost_update_rate: 0.02, seed: 3, ..FaultPlan::default() },
    );
    let r = check_si_report(&lost);
    assert!(r.count(AxiomKind::NoConflict) > 0);
    assert_eq!(r.count(AxiomKind::Int), 0);

    let stale = generate_faulty_history(
        &spec,
        FaultPlan { stale_read_rate: 0.02, seed: 3, ..FaultPlan::default() },
    );
    let r = check_si_report(&stale);
    assert!(r.count(AxiomKind::Ext) > 0);
    assert_eq!(r.count(AxiomKind::NoConflict), 0);

    let hidden = generate_faulty_history(
        &spec,
        FaultPlan { int_anomaly_rate: 0.02, seed: 3, ..FaultPlan::default() },
    );
    let r = check_si_report(&hidden);
    assert!(r.count(AxiomKind::Int) > 0);

    let mut skewed = generate_history(&spec, IsolationLevel::Si);
    assert!(inject_clock_skew(&mut skewed, 0.01, 100, 3) > 0);
    let r = check_si_report(&skewed);
    assert!(!r.is_ok(), "skewed timestamps must violate something");
}

#[test]
fn conflict_pairs_are_never_duplicated() {
    let h = generate_faulty_history(
        &base_spec().with_txns(4_000).with_keys(16),
        FaultPlan { lost_update_rate: 0.05, seed: 9, ..FaultPlan::default() },
    );
    let r = check_si_report(&h);
    let mut pairs = std::collections::HashSet::new();
    for v in &r.violations {
        if let Violation::NoConflict { key, t1, t2 } = v {
            let norm = if t1.0 < t2.0 { (*key, *t1, *t2) } else { (*key, *t2, *t1) };
            assert!(pairs.insert(norm), "duplicate conflict report {v}");
        }
    }
    assert!(!pairs.is_empty());
}

#[test]
fn list_engine_histories_check_clean_at_scale() {
    let spec = base_spec().with_txns(2_000).with_kind(DataKind::List).with_read_ratio(0.4);
    let h = generate_history(&spec, IsolationLevel::Si);
    assert!(h.stats().writes > 0);
    let r = check_si_report(&h);
    assert!(r.is_ok(), "{r}");
}
