//! # aion-core — CHRONOS
//!
//! Offline timestamp-based isolation checkers from the paper *"Online
//! Timestamp-based Transactional Isolation Checking of Database Systems"*
//! (ICDE 2025):
//!
//! * [`chronos::check_si`] — snapshot isolation (paper Algorithm 2),
//!   `O(N log N + M)`;
//! * [`chronos::check_ra`] — Read Atomic (the SI simulation with
//!   NOCONFLICT disabled: fractured reads forbidden, concurrent
//!   writers permitted);
//! * [`chronos_ser::check_ser`] — serializability under commit-timestamp
//!   arbitration (paper §VI-A);
//! * [`chronos_rc::check_rc`] — read committed (membership over the
//!   full per-key version chain: stale reads pass, phantom /
//!   intermediate / future reads do not);
//! * GC policies ([`gc::GcPolicy`]) and stage timing instrumentation
//!   ([`report::StageTimings`]) matching the paper's runtime decomposition
//!   experiments.
//!
//! ```
//! use aion_core::{check_si, ChronosOptions};
//! use aion_types::{DataKind, History, Key, TxnBuilder, Value};
//!
//! let mut h = History::new(DataKind::Kv);
//! h.push(TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(7)).build());
//! h.push(TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(7)).build());
//! let outcome = check_si(&h, &ChronosOptions::default());
//! assert!(outcome.is_ok());
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(rust_2018_idioms)]

pub mod chronos;
pub mod chronos_rc;
pub mod chronos_ser;
pub mod event;
pub mod gc;
pub mod report;
pub mod session;

pub use chronos::{
    check_ra, check_ra_consuming, check_ra_report, check_si, check_si_consuming, check_si_report,
    ChronosOptions,
};
pub use chronos_rc::{check_rc, check_rc_consuming, check_rc_report, ChronosRcOptions};
pub use chronos_ser::{check_ser, check_ser_consuming, check_ser_report, ChronosSerOptions};
pub use gc::GcPolicy;
pub use report::{ChronosOutcome, StageTimings};
pub use session::ChronosChecker;
