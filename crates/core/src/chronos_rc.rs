//! CHRONOS-RC: the offline timestamp-based read-committed checker.
//!
//! Read committed under timestamp arbitration means every external read
//! observes *some* committed version of its key — never a value no
//! committed transaction produced (G1a), never an intermediate write
//! (G1b), never a version from the reader's future — but staleness is
//! permitted: the observation need not be the frontier. Like CHRONOS-SER
//! the simulation processes whole transactions in commit-timestamp order
//! (the RC anchor is the commit event; start timestamps are ignored),
//! but instead of one rolling frontier it retains the full version chain
//! per key, because *any* earlier version justifies a read.
//!
//! Within a transaction the usual `int_val` chain applies: reads after
//! the transaction's own writes must observe the written value (INT),
//! repeated reads must agree, and base-dependent (list-append) chains
//! fold over the frontier base — the same convention the online
//! checker's RC membership predicate falls back to, so online and
//! offline RC verdicts agree (the conformance matrix asserts it).
//!
//! Memory is `O(total versions)` — the price of membership checking —
//! which the per-commit GC of the other CHRONOS variants cannot
//! reclaim; the GC options therefore only release transaction *inputs*,
//! exactly like CHRONOS-SER's heap-scan model.

use crate::gc::GcPolicy;
use crate::report::{ChronosOutcome, StageTimings};
use aion_types::Stopwatch;
use aion_types::{
    apply, classify_mismatch, CheckReport, FxHashMap, History, Key, MismatchAxiom, Mutation, Op,
    SessionId, Snapshot, Timestamp, Transaction, TxnId, Violation,
};

/// Configuration for the RC checker (same knobs as SI/SER).
pub type ChronosRcOptions = super::chronos::ChronosOptions;

/// Check a history against read committed, consuming it.
pub fn check_rc_consuming(history: History, opts: &ChronosRcOptions) -> ChronosOutcome {
    let mut outcome = ChronosOutcome {
        txns: history.txns.len(),
        ops: history.txns.iter().map(|t| t.ops.len()).sum(),
        ..ChronosOutcome::default()
    };
    let mut report = CheckReport::new();

    // --- sorting stage: commit order, plus the level-independent
    //     collection-integrity scan (duplicate ids/timestamps, Eq. 1) ----
    let sort_start = Stopwatch::start();
    let kind = history.kind;
    let mut order: Vec<u32> = (0..history.txns.len() as u32).collect();
    order.sort_unstable_by_key(|&i| {
        let t = &history.txns[i as usize];
        (t.commit_ts, t.tid)
    });
    {
        let mut seen: FxHashMap<TxnId, ()> = FxHashMap::default();
        let mut stamps: Vec<(Timestamp, TxnId)> = Vec::with_capacity(history.txns.len() * 2);
        for t in &history.txns {
            if seen.insert(t.tid, ()).is_some() {
                report.push(Violation::DuplicateTid { tid: t.tid });
            }
            if t.start_ts > t.commit_ts {
                report.push(Violation::TimestampOrder {
                    tid: t.tid,
                    start_ts: t.start_ts,
                    commit_ts: t.commit_ts,
                });
            }
            stamps.push((t.start_ts, t.tid));
            stamps.push((t.commit_ts, t.tid));
        }
        stamps.sort_unstable();
        for w in stamps.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 != w[1].1 {
                report.push(Violation::DuplicateTimestamp { ts: w[0].0, t1: w[0].1, t2: w[1].1 });
            }
        }
    }
    let sorting = sort_start.elapsed();

    // --- checking stage ----------------------------------------------------
    let check_start = Stopwatch::start();
    let mut gc_time = std::time::Duration::ZERO;
    let mut slots: Vec<Option<Transaction>> = history.txns.into_iter().map(Some).collect();
    // All committed snapshots per key, in commit order (the membership
    // set); the last entry doubles as the frontier for expectations.
    let mut versions: FxHashMap<Key, Vec<Snapshot>> = FxHashMap::default();
    let mut next_sno: FxHashMap<SessionId, u32> = FxHashMap::default();
    let mut last_cts: FxHashMap<SessionId, Timestamp> = FxHashMap::default();
    let mut done = 0usize;
    let mut since_gc = 0usize;

    for &i in &order {
        let idx = i as usize;
        {
            let t = slots[idx].as_ref().expect("transaction processed once");
            check_one_rc(t, kind, &mut versions, &mut next_sno, &mut last_cts, &mut report);
        }
        done += 1;
        since_gc += 1;
        match opts.gc {
            GcPolicy::Fast => slots[idx] = None,
            GcPolicy::EveryN(n) if since_gc >= n => {
                since_gc = 0;
                let gc_start = Stopwatch::start();
                for &k in order.iter().take(done) {
                    slots[k as usize] = None;
                }
                gc_time += gc_start.elapsed();
            }
            _ => {}
        }
    }
    outcome.peak_open_txns = 1;

    outcome.timings = StageTimings {
        loading: std::time::Duration::ZERO,
        sorting,
        checking: check_start.elapsed() - gc_time,
        gc: gc_time,
    };
    outcome.report = report;
    outcome
}

/// Simulate one transaction atomically at its commit point under RC.
fn check_one_rc(
    t: &Transaction,
    kind: aion_types::DataKind,
    versions: &mut FxHashMap<Key, Vec<Snapshot>>,
    next_sno: &mut FxHashMap<SessionId, u32>,
    last_cts: &mut FxHashMap<SessionId, Timestamp>,
    report: &mut CheckReport,
) {
    // SESSION: commit-ordered, like SER (start timestamps are ignored).
    let expected = next_sno.get(&t.sid).copied().unwrap_or(0);
    if t.sno != expected {
        report.push(Violation::Session {
            tid: t.tid,
            sid: t.sid,
            expected_sno: expected,
            found_sno: t.sno,
            start_ts: t.start_ts,
            last_commit_ts: last_cts.get(&t.sid).copied().unwrap_or(Timestamp::MIN),
        });
    }
    next_sno.insert(t.sid, t.sno + 1);
    last_cts.insert(t.sid, t.commit_ts);

    let frontier_of = |versions: &FxHashMap<Key, Vec<Snapshot>>, key: &Key| {
        versions
            .get(key)
            .and_then(|vs| vs.last().cloned())
            .unwrap_or_else(|| Snapshot::initial(kind))
    };

    let mut int_val: FxHashMap<Key, Snapshot> = FxHashMap::default();
    let mut muts: FxHashMap<Key, Vec<Mutation>> = FxHashMap::default();
    let mut write_set: Vec<(Key, Snapshot)> = Vec::new();

    for (op_index, op) in t.ops.iter().enumerate() {
        match op {
            Op::Read { key, value } => match int_val.get(key) {
                None => {
                    // External read: *some* committed version (or the
                    // initial value) must justify the observation.
                    let initial = Snapshot::initial(kind);
                    let ok =
                        *value == initial || versions.get(key).is_some_and(|vs| vs.contains(value));
                    if !ok {
                        // Report the frontier expectation, like the
                        // other variants — RC just accepts more.
                        report.push(Violation::Ext {
                            tid: t.tid,
                            key: *key,
                            op_index,
                            expected: frontier_of(versions, key),
                            observed: value.clone(),
                        });
                    }
                    int_val.insert(*key, value.clone());
                }
                Some(cur) => {
                    if value != cur {
                        let axiom = classify_mismatch(muts.get(key).map_or(&[][..], |m| m), value);
                        report.push(match axiom {
                            MismatchAxiom::Int => Violation::Int {
                                tid: t.tid,
                                key: *key,
                                op_index,
                                expected: cur.clone(),
                                observed: value.clone(),
                            },
                            MismatchAxiom::Ext => Violation::Ext {
                                tid: t.tid,
                                key: *key,
                                op_index,
                                expected: cur.clone(),
                                observed: value.clone(),
                            },
                        });
                    }
                }
            },
            Op::Write { key, mutation } => {
                // Base-dependent chains fold over the frontier base (the
                // online RC predicate's fallback convention).
                let base = match int_val.get(key) {
                    Some(cur) => cur.clone(),
                    None => frontier_of(versions, key),
                };
                let newv = apply(&base, mutation);
                int_val.insert(*key, newv.clone());
                muts.entry(*key).or_default().push(*mutation);
                match write_set.iter_mut().find(|(k, _)| k == key) {
                    Some((_, snap)) => *snap = newv,
                    None => write_set.push((*key, newv)),
                }
            }
        }
    }
    for (key, snap) in write_set {
        versions.entry(key).or_default().push(snap);
    }
}

/// Check a history against read committed by reference (clones
/// internally).
pub fn check_rc(history: &History, opts: &ChronosRcOptions) -> ChronosOutcome {
    check_rc_consuming(history.clone(), opts)
}

/// Convenience: check with default options and return only the report.
pub fn check_rc_report(history: &History) -> CheckReport {
    check_rc(history, &ChronosRcOptions::default()).report
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{AxiomKind, DataKind, TxnBuilder, Value};

    fn kv(txns: Vec<Transaction>) -> History {
        History { kind: DataKind::Kv, txns }
    }

    #[test]
    fn stale_committed_reads_pass_under_rc() {
        // Figure 11's stale read: EXT under SI/SER, legal under RC.
        let x = Key(1);
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(x, Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 4).put(x, Value(2)).build(),
            TxnBuilder::new(3).session(2, 0).interval(5, 6).read(x, Value(1)).build(),
        ]);
        assert!(check_rc(&h, &ChronosRcOptions::default()).is_ok());
        assert!(!crate::chronos_ser::check_ser(&h, &ChronosRcOptions::default()).is_ok());
    }

    #[test]
    fn phantom_and_future_reads_fail_under_rc() {
        // A value nobody committed (G1a shape).
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(7)).build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(9)).build(),
        ]);
        let out = check_rc(&h, &ChronosRcOptions::default());
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "{}", out.report);
        // A version committed after the reader (future read): the
        // membership set at the reader's commit point does not hold it.
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).read(Key(1), Value(5)).build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 4).put(Key(1), Value(5)).build(),
        ]);
        let out = check_rc(&h, &ChronosRcOptions::default());
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "{}", out.report);
    }

    #[test]
    fn int_and_session_and_integrity_still_checked() {
        let h = kv(vec![TxnBuilder::new(1)
            .session(0, 0)
            .interval(1, 2)
            .put(Key(1), Value(5))
            .read(Key(1), Value(9))
            .build()]);
        assert_eq!(check_rc(&h, &ChronosRcOptions::default()).report.count(AxiomKind::Int), 1);

        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).build(),
            TxnBuilder::new(2).session(0, 2).interval(3, 4).build(), // sno gap
        ]);
        assert_eq!(check_rc(&h, &ChronosRcOptions::default()).report.count(AxiomKind::Session), 1);

        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 5).build(),
            TxnBuilder::new(2).session(1, 0).interval(1, 7).build(), // ts collision
        ]);
        assert_eq!(
            check_rc(&h, &ChronosRcOptions::default()).report.count(AxiomKind::Integrity),
            1
        );
    }

    #[test]
    fn overlapping_writers_pass_under_rc() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 4).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(2, 5).put(Key(1), Value(2)).build(),
            TxnBuilder::new(3).session(2, 0).interval(6, 7).read(Key(1), Value(1)).build(),
        ]);
        // SI: NOCONFLICT; RC: both writers fine, the stale read fine.
        assert!(!crate::chronos::check_si(&h, &ChronosRcOptions::default()).is_ok());
        assert!(check_rc(&h, &ChronosRcOptions::default()).is_ok());
    }

    #[test]
    fn gc_policies_agree_under_rc() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(9)).build(),
        ]);
        let base = check_rc(&h, &ChronosRcOptions::with_gc(GcPolicy::Never)).report;
        for gc in [GcPolicy::Fast, GcPolicy::EveryN(1)] {
            let r = check_rc(&h, &ChronosRcOptions::with_gc(gc)).report;
            assert_eq!(r.violations, base.violations);
        }
    }

    #[test]
    fn intermediate_values_are_not_members() {
        // Writer puts 5 then 6; only 6 is a committed version. A read
        // of 5 is a G1b intermediate read — EXT under RC.
        let h = kv(vec![
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(1, 2)
                .put(Key(1), Value(5))
                .put(Key(1), Value(6))
                .build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(5)).build(),
        ]);
        let out = check_rc(&h, &ChronosRcOptions::default());
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "{}", out.report);
    }
}
