//! Checking outcomes: violations plus stage timing instrumentation.
//!
//! The paper decomposes CHRONOS runtime into *loading*, *sorting*,
//! *checking* and *garbage collecting* stages (§V-C1, Figs. 8–9). The
//! checkers in this crate time each stage so the experiment harness can
//! regenerate those figures.

use aion_types::CheckReport;
use std::fmt;
use std::time::Duration;

/// Wall-clock time spent in each CHRONOS stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Reading and decoding the history into memory.
    pub loading: Duration,
    /// Sorting the start/commit events by timestamp.
    pub sorting: Duration,
    /// Simulating the execution and checking axioms.
    pub checking: Duration,
    /// Garbage-collection sweeps.
    pub gc: Duration,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.loading + self.sorting + self.checking + self.gc
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "load {:.3}s sort {:.3}s check {:.3}s gc {:.3}s (total {:.3}s)",
            self.loading.as_secs_f64(),
            self.sorting.as_secs_f64(),
            self.checking.as_secs_f64(),
            self.gc.as_secs_f64(),
            self.total().as_secs_f64()
        )
    }
}

/// The result of one offline checking run.
#[derive(Clone, Debug, Default)]
pub struct ChronosOutcome {
    /// Violations found (empty means the history passes).
    pub report: CheckReport,
    /// Stage timing decomposition.
    pub timings: StageTimings,
    /// Number of transactions processed.
    pub txns: usize,
    /// Number of operations processed.
    pub ops: usize,
    /// Peak number of transactions simultaneously open (started but not
    /// yet committed) during the simulation; a proxy for the working set.
    pub peak_open_txns: usize,
}

impl ChronosOutcome {
    /// True when no violation was found.
    pub fn is_ok(&self) -> bool {
        self.report.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_total_sums_stages() {
        let t = StageTimings {
            loading: Duration::from_millis(10),
            sorting: Duration::from_millis(20),
            checking: Duration::from_millis(30),
            gc: Duration::from_millis(40),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        let s = t.to_string();
        assert!(s.contains("total 0.100s"));
    }

    #[test]
    fn outcome_defaults_ok() {
        let o = ChronosOutcome::default();
        assert!(o.is_ok());
        assert_eq!(o.txns, 0);
    }
}
