//! CHRONOS-SER: the offline timestamp-based serializability checker.
//!
//! Serializability under timestamp-based arbitration means every transaction
//! appears to execute *atomically at its commit timestamp*: each external
//! read observes the value produced by the latest earlier commit. Start
//! timestamps are ignored and NOCONFLICT is unnecessary (paper §VI-A): the
//! simulation processes whole transactions in commit-timestamp order and
//! checks SESSION, INT and EXT against a single rolling frontier.
//!
//! This is the oracle the paper uses to validate AION-SER's violation counts
//! (§VI-B reports 11,839 violations on a 500K SI-level history, "validated
//! by CHRONOS-SER").

use crate::gc::GcPolicy;
use crate::report::{ChronosOutcome, StageTimings};
use aion_types::Stopwatch;
use aion_types::{
    apply, classify_mismatch, CheckReport, FxHashMap, History, Key, MismatchAxiom, Mutation, Op,
    SessionId, Snapshot, Timestamp, Transaction, TxnId, Violation,
};

/// Configuration for the SER checker (same knobs as SI).
pub type ChronosSerOptions = super::chronos::ChronosOptions;

/// Check a history against serializability, consuming it.
pub fn check_ser_consuming(history: History, opts: &ChronosSerOptions) -> ChronosOutcome {
    let mut outcome = ChronosOutcome {
        txns: history.txns.len(),
        ops: history.txns.iter().map(|t| t.ops.len()).sum(),
        ..ChronosOutcome::default()
    };
    let mut report = CheckReport::new();

    // --- sorting stage: commit order only ---------------------------------
    let sort_start = Stopwatch::start();
    let kind = history.kind;
    let mut order: Vec<u32> = (0..history.txns.len() as u32).collect();
    order.sort_unstable_by_key(|&i| {
        let t = &history.txns[i as usize];
        (t.commit_ts, t.tid)
    });
    // Integrity: duplicate tids, Eq. (1) well-formedness, and timestamp
    // collisions across *all* recorded timestamps (start and commit; a
    // transaction may share its own pair). SER ignores start timestamps
    // for visibility, but collection integrity is level-independent:
    // AION-SER's global admission checks report start-side collisions
    // too, and the cross-checker conformance matrix holds both checkers
    // to the same verdict. (Previously only commit-commit collisions
    // were scanned here — a gap the matrix caught.)
    {
        let mut seen: FxHashMap<TxnId, ()> = FxHashMap::default();
        let mut stamps: Vec<(Timestamp, TxnId)> = Vec::with_capacity(history.txns.len() * 2);
        for t in &history.txns {
            if seen.insert(t.tid, ()).is_some() {
                report.push(Violation::DuplicateTid { tid: t.tid });
            }
            if t.start_ts > t.commit_ts {
                report.push(Violation::TimestampOrder {
                    tid: t.tid,
                    start_ts: t.start_ts,
                    commit_ts: t.commit_ts,
                });
            }
            stamps.push((t.start_ts, t.tid));
            stamps.push((t.commit_ts, t.tid));
        }
        stamps.sort_unstable();
        for w in stamps.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 != w[1].1 {
                report.push(Violation::DuplicateTimestamp { ts: w[0].0, t1: w[0].1, t2: w[1].1 });
            }
        }
    }
    let sorting = sort_start.elapsed();

    // --- checking stage ----------------------------------------------------
    let check_start = Stopwatch::start();
    let mut gc_time = std::time::Duration::ZERO;
    let mut slots: Vec<Option<Transaction>> = history.txns.into_iter().map(Some).collect();
    let mut frontier: FxHashMap<Key, Snapshot> = FxHashMap::default();
    let mut next_sno: FxHashMap<SessionId, u32> = FxHashMap::default();
    let mut last_cts: FxHashMap<SessionId, Timestamp> = FxHashMap::default();
    let mut done = 0usize;
    let mut since_gc = 0usize;

    for &i in &order {
        let idx = i as usize;
        {
            let t = slots[idx].as_ref().expect("transaction processed once");
            check_one_ser(t, kind, &mut frontier, &mut next_sno, &mut last_cts, &mut report);
        }
        done += 1;
        since_gc += 1;
        match opts.gc {
            GcPolicy::Fast => slots[idx] = None,
            GcPolicy::EveryN(n) if since_gc >= n => {
                since_gc = 0;
                let gc_start = Stopwatch::start();
                // Heap-scan model: drop the already-simulated prefix (in
                // commit order); each sweep touches the full prefix, so
                // frequent GC costs more in total, as in the paper.
                for &k in order.iter().take(done) {
                    slots[k as usize] = None;
                }
                gc_time += gc_start.elapsed();
            }
            _ => {}
        }
    }
    outcome.peak_open_txns = 1;

    outcome.timings = StageTimings {
        loading: std::time::Duration::ZERO,
        sorting,
        checking: check_start.elapsed() - gc_time,
        gc: gc_time,
    };
    outcome.report = report;
    outcome
}

/// Simulate one transaction atomically at its commit point.
pub(crate) fn check_one_ser(
    t: &Transaction,
    kind: aion_types::DataKind,
    frontier: &mut FxHashMap<Key, Snapshot>,
    next_sno: &mut FxHashMap<SessionId, u32>,
    last_cts: &mut FxHashMap<SessionId, Timestamp>,
    report: &mut CheckReport,
) {
    // SESSION: processing in commit order, the session's transactions must
    // appear in sno order (start timestamps are ignored under SER).
    let expected = next_sno.get(&t.sid).copied().unwrap_or(0);
    if t.sno != expected {
        report.push(Violation::Session {
            tid: t.tid,
            sid: t.sid,
            expected_sno: expected,
            found_sno: t.sno,
            start_ts: t.start_ts,
            last_commit_ts: last_cts.get(&t.sid).copied().unwrap_or(Timestamp::MIN),
        });
    }
    next_sno.insert(t.sid, t.sno + 1);
    last_cts.insert(t.sid, t.commit_ts);

    let mut int_val: FxHashMap<Key, Snapshot> = FxHashMap::default();
    let mut muts: FxHashMap<Key, Vec<Mutation>> = FxHashMap::default();
    let mut write_set: Vec<(Key, Snapshot)> = Vec::new();

    for (op_index, op) in t.ops.iter().enumerate() {
        match op {
            Op::Read { key, value } => match int_val.get(key) {
                None => {
                    let expect =
                        frontier.get(key).cloned().unwrap_or_else(|| Snapshot::initial(kind));
                    if *value != expect {
                        report.push(Violation::Ext {
                            tid: t.tid,
                            key: *key,
                            op_index,
                            expected: expect,
                            observed: value.clone(),
                        });
                    }
                    int_val.insert(*key, value.clone());
                }
                Some(cur) => {
                    if value != cur {
                        let axiom = classify_mismatch(muts.get(key).map_or(&[][..], |m| m), value);
                        report.push(match axiom {
                            MismatchAxiom::Int => Violation::Int {
                                tid: t.tid,
                                key: *key,
                                op_index,
                                expected: cur.clone(),
                                observed: value.clone(),
                            },
                            MismatchAxiom::Ext => Violation::Ext {
                                tid: t.tid,
                                key: *key,
                                op_index,
                                expected: cur.clone(),
                                observed: value.clone(),
                            },
                        });
                    }
                }
            },
            Op::Write { key, mutation } => {
                let base = match int_val.get(key) {
                    Some(cur) => cur.clone(),
                    None => frontier.get(key).cloned().unwrap_or_else(|| Snapshot::initial(kind)),
                };
                let newv = apply(&base, mutation);
                int_val.insert(*key, newv.clone());
                muts.entry(*key).or_default().push(*mutation);
                match write_set.iter_mut().find(|(k, _)| k == key) {
                    Some((_, snap)) => *snap = newv,
                    None => write_set.push((*key, newv)),
                }
            }
        }
    }
    for (key, snap) in write_set {
        frontier.insert(key, snap);
    }
}

/// Check a history against serializability by reference (clones internally).
pub fn check_ser(history: &History, opts: &ChronosSerOptions) -> ChronosOutcome {
    check_ser_consuming(history.clone(), opts)
}

/// Convenience: check with default options and return only the report.
pub fn check_ser_report(history: &History) -> CheckReport {
    check_ser(history, &ChronosSerOptions::default()).report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chronos::ChronosOptions;
    use aion_types::{AxiomKind, DataKind, TxnBuilder, Value};

    fn kv(txns: Vec<Transaction>) -> History {
        History { kind: DataKind::Kv, txns }
    }

    #[test]
    fn serial_history_passes() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2)
                .session(0, 1)
                .interval(3, 4)
                .read(Key(1), Value(1))
                .put(Key(1), Value(2))
                .build(),
            TxnBuilder::new(3).session(1, 0).interval(5, 6).read(Key(1), Value(2)).build(),
        ]);
        let out = check_ser(&h, &ChronosOptions::default());
        assert!(out.is_ok(), "{}", out.report);
    }

    #[test]
    fn si_read_skew_flagged_under_ser() {
        // T2 overlaps T1 and reads the pre-T1 snapshot: fine under SI,
        // an EXT violation under commit-order serializability.
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 6).put(Key(1), Value(2)).build(),
            TxnBuilder::new(2).session(2, 0).interval(4, 7).read(Key(1), Value(1)).build(),
        ]);
        let si = crate::chronos::check_si(&h, &ChronosOptions::default());
        assert!(si.is_ok(), "SI should accept: {}", si.report);
        let ser = check_ser(&h, &ChronosOptions::default());
        assert_eq!(ser.report.count(AxiomKind::Ext), 1, "{}", ser.report);
    }

    #[test]
    fn ser_ignores_write_write_overlap_when_reads_consistent() {
        // Two overlapping blind writers: SI's NOCONFLICT rejects, but under
        // SER (commit-order execution) the final state is consistent.
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 4).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(2, 5).put(Key(1), Value(2)).build(),
            TxnBuilder::new(3).session(2, 0).interval(6, 7).read(Key(1), Value(2)).build(),
        ]);
        assert!(!crate::chronos::check_si(&h, &ChronosOptions::default()).is_ok());
        assert!(check_ser(&h, &ChronosOptions::default()).is_ok());
    }

    #[test]
    fn session_order_must_match_commit_order() {
        // Session 0's second transaction commits before its first.
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 10).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2).session(0, 1).interval(2, 5).put(Key(2), Value(1)).build(),
        ]);
        let out = check_ser(&h, &ChronosOptions::default());
        assert!(out.report.count(AxiomKind::Session) >= 1, "{}", out.report);
    }

    #[test]
    fn int_checked_under_ser() {
        let h = kv(vec![TxnBuilder::new(1)
            .session(0, 0)
            .interval(1, 2)
            .put(Key(1), Value(5))
            .read(Key(1), Value(9))
            .build()]);
        let out = check_ser(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::Int), 1);
    }

    #[test]
    fn duplicate_commit_ts_reported() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 5).build(),
            TxnBuilder::new(2).session(1, 0).interval(2, 5).build(),
        ]);
        let out = check_ser(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::Integrity), 1);
    }

    #[test]
    fn duplicate_start_ts_reported_under_ser() {
        // SER ignores start timestamps for visibility, but a start
        // colliding with another transaction's timestamp is still a
        // collection-integrity break — AION-SER reports it, and the
        // conformance matrix caught CHRONOS-SER silently accepting it.
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 5).build(),
            TxnBuilder::new(2).session(1, 0).interval(1, 7).build(),
        ]);
        let out = check_ser(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::Integrity), 1, "{}", out.report);
    }

    #[test]
    fn eq1_malformed_reported_under_ser() {
        let h = kv(vec![TxnBuilder::new(1).session(0, 0).interval(9, 3).build()]);
        let out = check_ser(&h, &ChronosOptions::default());
        assert!(
            out.report.violations.iter().any(|v| matches!(v, Violation::TimestampOrder { .. })),
            "{}",
            out.report
        );
    }

    #[test]
    fn gc_policies_agree_under_ser() {
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 6).put(Key(1), Value(2)).build(),
            TxnBuilder::new(2).session(2, 0).interval(4, 7).read(Key(1), Value(1)).build(),
        ]);
        let base = check_ser(&h, &ChronosOptions::with_gc(GcPolicy::Never)).report;
        for gc in [GcPolicy::Fast, GcPolicy::EveryN(1)] {
            let r = check_ser(&h, &ChronosOptions::with_gc(gc)).report;
            assert_eq!(r.violations, base.violations);
        }
    }
}
