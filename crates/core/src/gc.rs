//! Garbage-collection policies for the offline checker.
//!
//! CHRONOS frees a transaction's memory as soon as its information has been
//! absorbed into `frontier`/`last_sno`/`last_cts` (paper lines 2:30–2:33).
//! The paper's experiments additionally sweep periodically and compare GC
//! frequencies (Figs. 6, 9, 10); these policies mirror that design space.

/// When the offline checker releases processed transactions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GcPolicy {
    /// Never free anything until the run ends (the paper's `gc-∞`).
    Never,
    /// Sweep after every `n` processed commit events (the paper's
    /// `gc-10k`, `gc-20k`, ...). Each sweep walks the transaction table, so
    /// more frequent sweeps trade runtime for a smaller working set.
    EveryN(usize),
    /// Drop each transaction the moment its start event has been fully
    /// absorbed (the paper's `fast` setting): minimal memory, no sweeps.
    #[default]
    Fast,
}

impl GcPolicy {
    /// Parse the experiment-harness spelling: `inf`, `fast`, or a number.
    pub fn parse(s: &str) -> Option<GcPolicy> {
        match s {
            "inf" | "never" | "none" => Some(GcPolicy::Never),
            "fast" => Some(GcPolicy::Fast),
            n => n.parse::<usize>().ok().filter(|&n| n > 0).map(GcPolicy::EveryN),
        }
    }

    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            GcPolicy::Never => "gc-inf".to_string(),
            GcPolicy::Fast => "gc-fast".to_string(),
            GcPolicy::EveryN(n) if n % 1000 == 0 => format!("gc-{}k", n / 1000),
            GcPolicy::EveryN(n) => format!("gc-{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spellings() {
        assert_eq!(GcPolicy::parse("inf"), Some(GcPolicy::Never));
        assert_eq!(GcPolicy::parse("fast"), Some(GcPolicy::Fast));
        assert_eq!(GcPolicy::parse("10000"), Some(GcPolicy::EveryN(10000)));
        assert_eq!(GcPolicy::parse("0"), None);
        assert_eq!(GcPolicy::parse("x"), None);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(GcPolicy::Never.label(), "gc-inf");
        assert_eq!(GcPolicy::Fast.label(), "gc-fast");
        assert_eq!(GcPolicy::EveryN(10_000).label(), "gc-10k");
        assert_eq!(GcPolicy::EveryN(1234).label(), "gc-1234");
    }
}
