//! CHRONOS: the offline timestamp-based snapshot-isolation checker
//! (paper Algorithm 2).
//!
//! CHRONOS relates SI's operational semantics (Algorithm 1) to its axiomatic
//! semantics by fixing arbitration to commit-timestamp order (Definition 5)
//! and visibility to "committed before my start" (Definition 6). With both
//! relations fixed, PREFIX holds by construction and the remaining axioms —
//! SESSION, INT, EXT, NOCONFLICT — are checked by *simulating* the execution
//! one start/commit event at a time in timestamp order:
//!
//! * `frontier[k]` — the last committed snapshot of key `k` (in AR order);
//! * `ongoing[k]` — transactions currently holding an uncommitted write to
//!   `k`; non-empty at another writer's commit ⇒ NOCONFLICT violation;
//! * `last_sno`/`last_cts` — per-session progress for SESSION;
//! * a per-transaction `int_val` (scoped to the transaction's start event)
//!   for INT and the read-expectation rule of [`aion_types::expected_read`].
//!
//! Complexity is `O(N log N + M)`: one sort of `2N` events plus constant
//! amortized work per operation (hash-map backed state). All violations are
//! reported; the checker never stops at the first one (§III-B2).

use crate::event::build_events;
use crate::gc::GcPolicy;
use crate::report::{ChronosOutcome, StageTimings};
use aion_types::Stopwatch;
use aion_types::{
    apply, classify_mismatch, CheckReport, DataKind, FxHashMap, History, Key, MismatchAxiom,
    Mutation, Op, SessionId, Snapshot, Timestamp, Transaction, TxnId, Violation,
};

/// Configuration for an offline checking run.
///
/// `#[non_exhaustive]`: construct via [`ChronosOptions::default`] or
/// [`ChronosOptions::with_gc`] so future knobs stay non-breaking; the
/// fields remain `pub` for reading and in-place mutation.
#[derive(Clone, Copy, Debug, Default)]
#[non_exhaustive]
pub struct ChronosOptions {
    /// Garbage-collection policy (see [`GcPolicy`]).
    pub gc: GcPolicy,
}

impl ChronosOptions {
    /// Options with a specific GC policy.
    pub fn with_gc(gc: GcPolicy) -> Self {
        ChronosOptions { gc }
    }
}

/// Shared simulation state for the SI checker.
struct SiState {
    kind: DataKind,
    /// Next expected sequence number per session (paper: `last_sno + 1`).
    next_sno: FxHashMap<SessionId, u32>,
    /// Commit timestamp of the last processed transaction per session.
    last_cts: FxHashMap<SessionId, Timestamp>,
    /// Last committed snapshot per key (paper: `frontier`).
    frontier: FxHashMap<Key, Snapshot>,
    /// Uncommitted writers per key (paper: `ongoing`).
    ongoing: FxHashMap<Key, Vec<TxnId>>,
    /// Final written snapshots of started-but-uncommitted transactions
    /// (paper: `ext_val`, keyed by transaction).
    pending_writes: FxHashMap<TxnId, Vec<(Key, Snapshot)>>,
}

impl SiState {
    fn new(kind: DataKind) -> SiState {
        SiState {
            kind,
            next_sno: FxHashMap::default(),
            last_cts: FxHashMap::default(),
            frontier: FxHashMap::default(),
            ongoing: FxHashMap::default(),
            pending_writes: FxHashMap::default(),
        }
    }

    fn frontier_of(&self, key: Key) -> Snapshot {
        self.frontier.get(&key).cloned().unwrap_or_else(|| Snapshot::initial(self.kind))
    }

    /// Paper lines 2:7–2:10: SESSION check plus per-session bookkeeping.
    fn check_session(&mut self, t: &Transaction, report: &mut CheckReport) {
        let expected = self.next_sno.get(&t.sid).copied().unwrap_or(0);
        let last_cts = self.last_cts.get(&t.sid).copied().unwrap_or(Timestamp::MIN);
        if t.sno != expected || t.start_ts < last_cts {
            report.push(Violation::Session {
                tid: t.tid,
                sid: t.sid,
                expected_sno: expected,
                found_sno: t.sno,
                start_ts: t.start_ts,
                last_commit_ts: last_cts,
            });
        }
        self.next_sno.insert(t.sid, t.sno + 1);
        self.last_cts.insert(t.sid, t.commit_ts);
    }

    /// Paper lines 2:6–2:22: process the start event — SESSION, INT, EXT,
    /// and accumulation of the transaction's write set.
    fn process_start(&mut self, t: &Transaction, report: &mut CheckReport) {
        self.check_session(t, report);

        // Malformed `start > commit` transactions were already reported at
        // event build time; their commit event precedes this start event,
        // so registering them as ongoing would leave permanent ghosts.
        let malformed = t.start_ts > t.commit_ts;

        // Per-transaction scratch state, dropped at the end of the start
        // event (the paper gc's `int_val` at commit; since all operations
        // are examined here, the scope can end even earlier).
        let mut int_val: FxHashMap<Key, Snapshot> = FxHashMap::default();
        let mut muts: FxHashMap<Key, Vec<Mutation>> = FxHashMap::default();
        let mut write_set: Vec<(Key, Snapshot)> = Vec::new();

        for (op_index, op) in t.ops.iter().enumerate() {
            match op {
                Op::Read { key, value } => match int_val.get(key) {
                    None => {
                        // External read: must observe the frontier (EXT).
                        let expect = self.frontier_of(*key);
                        if *value != expect {
                            report.push(Violation::Ext {
                                tid: t.tid,
                                key: *key,
                                op_index,
                                expected: expect.clone(),
                                observed: value.clone(),
                            });
                        }
                        // Track the observation so later reads of the same
                        // key are checked for read-read consistency (INT).
                        int_val.insert(*key, value.clone());
                    }
                    Some(cur) => {
                        if value != cur {
                            let axiom =
                                classify_mismatch(muts.get(key).map_or(&[][..], |m| m), value);
                            let v = match axiom {
                                MismatchAxiom::Int => Violation::Int {
                                    tid: t.tid,
                                    key: *key,
                                    op_index,
                                    expected: cur.clone(),
                                    observed: value.clone(),
                                },
                                MismatchAxiom::Ext => Violation::Ext {
                                    tid: t.tid,
                                    key: *key,
                                    op_index,
                                    expected: cur.clone(),
                                    observed: value.clone(),
                                },
                            };
                            report.push(v);
                        }
                    }
                },
                Op::Write { key, mutation } => {
                    let base = match int_val.get(key) {
                        Some(cur) => cur.clone(),
                        None => self.frontier_of(*key),
                    };
                    let newv = apply(&base, mutation);
                    int_val.insert(*key, newv.clone());
                    muts.entry(*key).or_default().push(*mutation);
                    match write_set.iter_mut().find(|(k, _)| k == key) {
                        Some((_, snap)) => *snap = newv,
                        None => {
                            write_set.push((*key, newv));
                            if !malformed {
                                self.ongoing.entry(*key).or_default().push(t.tid);
                            }
                        }
                    }
                }
            }
        }

        if !malformed && !write_set.is_empty() {
            self.pending_writes.insert(t.tid, write_set);
        }
    }

    /// Paper lines 2:23–2:33: process the commit event — NOCONFLICT
    /// (when the level activates it) and frontier publication, then
    /// release per-transaction state.
    fn process_commit(&mut self, tid: TxnId, noconflict: bool, report: &mut CheckReport) {
        let Some(write_set) = self.pending_writes.remove(&tid) else {
            return; // read-only, malformed, or never started
        };
        for (key, snap) in write_set {
            if let Some(writers) = self.ongoing.get_mut(&key) {
                if let Some(pos) = writers.iter().position(|&w| w == tid) {
                    writers.swap_remove(pos);
                }
                // Anyone still ongoing on this key overlaps us: NOCONFLICT.
                // The first committer reports, so each conflicting pair is
                // reported exactly once (paper Example 4). Read Atomic
                // shares the whole simulation but permits the overlap.
                if noconflict {
                    for &other in writers.iter() {
                        report.push(Violation::NoConflict { key, t1: tid, t2: other });
                    }
                }
                if writers.is_empty() {
                    self.ongoing.remove(&key);
                }
            }
            self.frontier.insert(key, snap);
        }
    }
}

/// Check a history against snapshot isolation, consuming it so that
/// transactions can be freed as soon as they are processed (the GC study of
/// Figs. 6, 9, 10 depends on this).
pub fn check_si_consuming(history: History, opts: &ChronosOptions) -> ChronosOutcome {
    check_snapshot_consuming(history, opts, true)
}

/// Check a history against Read Atomic — the start-anchored snapshot
/// simulation of [`check_si_consuming`] with NOCONFLICT disabled
/// (concurrent writers are permitted; fractured or stale reads are not).
pub fn check_ra_consuming(history: History, opts: &ChronosOptions) -> ChronosOutcome {
    check_snapshot_consuming(history, opts, false)
}

fn check_snapshot_consuming(
    history: History,
    opts: &ChronosOptions,
    noconflict: bool,
) -> ChronosOutcome {
    let mut outcome = ChronosOutcome {
        txns: history.txns.len(),
        ops: history.txns.iter().map(|t| t.ops.len()).sum(),
        ..ChronosOutcome::default()
    };
    let mut report = CheckReport::new();

    // --- sorting stage ---------------------------------------------------
    let sort_start = Stopwatch::start();
    let events = build_events(&history, &mut report);
    let sorting = sort_start.elapsed();

    // --- checking (+ gc) stage -------------------------------------------
    let check_start = Stopwatch::start();
    let mut gc_time = std::time::Duration::ZERO;
    let kind = history.kind;
    let mut slots: Vec<Option<Transaction>> = history.txns.into_iter().map(Some).collect();
    let mut commit_done: Vec<bool> = vec![false; slots.len()];
    let mut state = SiState::new(kind);
    let mut commits_since_gc = 0usize;
    let mut open_txns = 0usize;

    for ev in &events {
        let idx = ev.idx as usize;
        if ev.is_start() {
            if let Some(t) = slots[idx].as_ref() {
                state.process_start(t, &mut report);
                open_txns += 1;
                outcome.peak_open_txns = outcome.peak_open_txns.max(open_txns);
            }
            if opts.gc == GcPolicy::Fast {
                // Everything needed later lives in `pending_writes` now.
                slots[idx] = None;
            }
        } else {
            state.process_commit(ev.key.tid, noconflict, &mut report);
            open_txns = open_txns.saturating_sub(1);
            commit_done[idx] = true;
            commits_since_gc += 1;
            if let GcPolicy::EveryN(n) = opts.gc {
                if commits_since_gc >= n {
                    commits_since_gc = 0;
                    let gc_start = Stopwatch::start();
                    sweep(&mut slots, &commit_done);
                    gc_time += gc_start.elapsed();
                }
            }
        }
    }

    outcome.timings = StageTimings {
        loading: std::time::Duration::ZERO,
        sorting,
        checking: check_start.elapsed() - gc_time,
        gc: gc_time,
    };
    outcome.report = report;
    outcome
}

/// One GC sweep: walk the whole transaction table (modelling a heap scan)
/// and drop every transaction whose commit event has been processed.
fn sweep(slots: &mut [Option<Transaction>], commit_done: &[bool]) {
    for (slot, &done) in slots.iter_mut().zip(commit_done) {
        if done && slot.is_some() {
            *slot = None;
        }
    }
}

/// Check a history against snapshot isolation by reference. Clones the
/// transactions internally; prefer [`check_si_consuming`] for large
/// histories where the incremental memory release matters.
pub fn check_si(history: &History, opts: &ChronosOptions) -> ChronosOutcome {
    check_si_consuming(history.clone(), opts)
}

/// Check a history against Read Atomic by reference (see
/// [`check_ra_consuming`]).
pub fn check_ra(history: &History, opts: &ChronosOptions) -> ChronosOutcome {
    check_ra_consuming(history.clone(), opts)
}

/// Convenience: check with default options and return only the report.
pub fn check_si_report(history: &History) -> CheckReport {
    check_si(history, &ChronosOptions::default()).report
}

/// Convenience: RA-check with default options and return only the report.
pub fn check_ra_report(history: &History) -> CheckReport {
    check_ra(history, &ChronosOptions::default()).report
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{AxiomKind, TxnBuilder, Value};

    fn kv(txns: Vec<Transaction>) -> History {
        History { kind: DataKind::Kv, txns }
    }

    fn list(txns: Vec<Transaction>) -> History {
        History { kind: DataKind::List, txns }
    }

    /// Paper Figure 1: a valid SI history.
    #[test]
    fn figure1_valid_history() {
        let h = kv(vec![
            TxnBuilder::new(0)
                .session(0, 0)
                .interval(1, 2)
                .put(Key(1), Value(0))
                .put(Key(2), Value(0))
                .build(),
            TxnBuilder::new(1)
                .session(1, 0)
                .interval(3, 6)
                .put(Key(1), Value(1))
                .put(Key(2), Value(2))
                .build(),
            TxnBuilder::new(2).session(2, 0).interval(4, 5).read(Key(1), Value(0)).build(),
            TxnBuilder::new(3).session(3, 0).interval(7, 8).read(Key(2), Value(2)).build(),
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert!(out.is_ok(), "{}", out.report);
        assert_eq!(out.txns, 4);
        assert_eq!(out.ops, 6);
    }

    /// Paper Figure 2 / Example 4: exactly one NOCONFLICT violation
    /// (T5 vs T3 on y), reported once at T5's commit.
    #[test]
    fn figure2_single_noconflict() {
        let x = Key(1);
        let y = Key(2);
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(x, Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 5).put(x, Value(2)).build(),
            TxnBuilder::new(3)
                .session(2, 0)
                .interval(6, 9)
                .read(x, Value(2))
                .put(y, Value(2))
                .build(),
            TxnBuilder::new(4).session(3, 0).interval(8, 10).read(y, Value(1)).build(),
            TxnBuilder::new(5)
                .session(4, 0)
                .interval(4, 7)
                .read(x, Value(1))
                .put(y, Value(1))
                .build(),
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.report.len(), 1, "{}", out.report);
        assert_eq!(
            out.report.violations[0],
            Violation::NoConflict { key: y, t1: TxnId(5), t2: TxnId(3) }
        );
    }

    /// Paper Figure 11: sequential commits T1(w x=1), T2(w x=2), T3(r x=1).
    /// Timestamp-based checking must flag the stale read as EXT.
    #[test]
    fn figure11_stale_read_flagged() {
        let x = Key(1);
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(x, Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 4).put(x, Value(2)).build(),
            TxnBuilder::new(3).session(2, 0).interval(5, 6).read(x, Value(1)).build(),
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "{}", out.report);
    }

    #[test]
    fn session_violation_on_start_before_predecessor_commit() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 10).put(Key(1), Value(1)).build(),
            // Same session, starts at 5 < predecessor's commit 10.
            TxnBuilder::new(2).session(0, 1).interval(5, 6).read(Key(2), Value(0)).build(),
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::Session), 1, "{}", out.report);
    }

    #[test]
    fn session_violation_on_sno_gap() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).build(),
            TxnBuilder::new(2).session(0, 2).interval(3, 4).build(), // skipped sno 1
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::Session), 1);
    }

    #[test]
    fn int_violation_write_then_wrong_read() {
        let h = kv(vec![TxnBuilder::new(1)
            .session(0, 0)
            .interval(1, 2)
            .put(Key(1), Value(5))
            .read(Key(1), Value(6))
            .build()]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::Int), 1, "{}", out.report);
    }

    #[test]
    fn int_violation_read_read_inconsistency() {
        // Two external-looking reads of the same key returning different
        // values: the second is an internal read and must match the first.
        let h = kv(vec![TxnBuilder::new(1)
            .session(0, 0)
            .interval(1, 2)
            .read(Key(1), Value(0))
            .read(Key(1), Value(3))
            .build()]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.report.len(), 1);
        // No put preceded the second read, so the mismatch classifies as EXT
        // per the uniform rule (the "base" — here the first observation —
        // is what disagrees).
        assert!(matches!(
            out.report.violations[0],
            Violation::Ext { tid: TxnId(1), op_index: 1, .. }
        ));
    }

    #[test]
    fn ext_violation_reads_stale_frontier() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(7)).build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(0)).build(),
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::Ext), 1);
        match &out.report.violations[0] {
            Violation::Ext { expected, observed, .. } => {
                assert_eq!(*expected, Snapshot::Scalar(Value(7)));
                assert_eq!(*observed, Snapshot::Scalar(Value(0)));
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn concurrent_read_misses_uncommitted_write() {
        // T2 starts inside T1's interval: must NOT see T1's write.
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 5).put(Key(1), Value(9)).build(),
            TxnBuilder::new(2).session(1, 0).interval(2, 3).read(Key(1), Value(0)).build(),
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert!(out.is_ok(), "{}", out.report);
    }

    #[test]
    fn noconflict_requires_overlap() {
        // Sequential writers to the same key: no conflict.
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 4).put(Key(1), Value(2)).build(),
        ]);
        assert!(check_si(&h, &ChronosOptions::default()).is_ok());
    }

    #[test]
    fn noconflict_three_way_overlap_reports_each_pair_once() {
        // Three overlapping writers of k: pairs (a,b), (a,c), (b,c) — each
        // reported exactly once by the earlier committer.
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 4).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(2, 5).put(Key(1), Value(2)).build(),
            TxnBuilder::new(3).session(2, 0).interval(3, 6).put(Key(1), Value(3)).build(),
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::NoConflict), 3, "{}", out.report);
        // Reads of the final frontier reflect the last committer.
        let h2 = {
            let mut h2 = h.clone();
            h2.push(TxnBuilder::new(4).session(3, 0).interval(7, 8).read(Key(1), Value(3)).build());
            h2
        };
        let out2 = check_si(&h2, &ChronosOptions::default());
        assert_eq!(out2.report.count(AxiomKind::Ext), 0);
    }

    #[test]
    fn readonly_txn_with_equal_timestamps() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 3).read(Key(1), Value(1)).build(),
        ]);
        assert!(check_si(&h, &ChronosOptions::default()).is_ok());
    }

    #[test]
    fn malformed_start_after_commit_reported_not_poisoning() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(9, 3).put(Key(1), Value(1)).build(),
            // A later well-formed writer of the same key must not be flagged
            // as conflicting with the malformed ghost.
            TxnBuilder::new(2).session(1, 0).interval(10, 11).put(Key(1), Value(2)).build(),
            TxnBuilder::new(3).session(2, 0).interval(12, 13).read(Key(1), Value(2)).build(),
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::Integrity), 1);
        assert_eq!(out.report.count(AxiomKind::NoConflict), 0);
        assert_eq!(out.report.count(AxiomKind::Ext), 0, "{}", out.report);
    }

    #[test]
    fn list_history_valid_appends() {
        let k = Key(1);
        let h = list(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).append(k, Value(1)).build(),
            TxnBuilder::new(2)
                .session(1, 0)
                .interval(3, 4)
                .append(k, Value(2))
                .read_list(k, vec![Value(1), Value(2)])
                .build(),
            TxnBuilder::new(3)
                .session(2, 0)
                .interval(5, 6)
                .read_list(k, vec![Value(1), Value(2)])
                .build(),
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert!(out.is_ok(), "{}", out.report);
    }

    #[test]
    fn list_history_prefix_mismatch_is_ext() {
        let k = Key(1);
        let h = list(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).append(k, Value(1)).build(),
            // Reads [2] after appending 2: lost the committed prefix [1].
            TxnBuilder::new(2)
                .session(1, 0)
                .interval(3, 4)
                .append(k, Value(2))
                .read_list(k, vec![Value(2)])
                .build(),
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "{}", out.report);
    }

    #[test]
    fn list_history_lost_append_is_int() {
        let k = Key(1);
        let h = list(vec![TxnBuilder::new(1)
            .session(0, 0)
            .interval(1, 2)
            .append(k, Value(1))
            .read_list(k, vec![])
            .build()]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.report.count(AxiomKind::Int), 1, "{}", out.report);
    }

    #[test]
    fn gc_policies_do_not_change_verdict() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 4).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(2, 5).put(Key(1), Value(2)).build(),
            TxnBuilder::new(3).session(2, 0).interval(6, 7).read(Key(1), Value(2)).build(),
        ]);
        let base = check_si(&h, &ChronosOptions::with_gc(GcPolicy::Never)).report;
        for gc in [GcPolicy::Fast, GcPolicy::EveryN(1), GcPolicy::EveryN(2)] {
            let r = check_si(&h, &ChronosOptions::with_gc(gc)).report;
            assert_eq!(r.violations, base.violations, "gc {gc:?}");
        }
    }

    #[test]
    fn empty_history_passes() {
        let out = check_si(&kv(vec![]), &ChronosOptions::default());
        assert!(out.is_ok());
        assert_eq!(out.txns, 0);
    }

    #[test]
    fn overwrites_within_txn_publish_final_value() {
        let h = kv(vec![
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(1, 2)
                .put(Key(1), Value(1))
                .put(Key(1), Value(2))
                .build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(2)).build(),
        ]);
        assert!(check_si(&h, &ChronosOptions::default()).is_ok());
    }

    #[test]
    fn peak_open_txns_tracks_concurrency() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 10).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(2, 11).put(Key(2), Value(1)).build(),
            TxnBuilder::new(3).session(2, 0).interval(3, 12).put(Key(3), Value(1)).build(),
        ]);
        let out = check_si(&h, &ChronosOptions::default());
        assert_eq!(out.peak_open_txns, 3);
    }
}
