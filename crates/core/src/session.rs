//! Offline CHRONOS behind the streaming [`Checker`] trait.
//!
//! [`ChronosChecker`] adapts the batch checkers [`check_si`] and
//! [`check_ser`] to the workspace-wide session API: `feed` buffers
//! transactions (emitting no events — offline checkers have no
//! incremental verdicts), `tick` is a no-op, and `finish` runs the whole
//! check and converts the [`ChronosOutcome`] into the uniform
//! [`aion_types::Outcome`]. This is what lets `run_plan`, the benches
//! and the examples replay one arrival plan through AION and CHRONOS
//! interchangeably and compare verdicts.
//!
//! [`check_si`]: crate::chronos::check_si
//! [`check_ser`]: crate::chronos_ser::check_ser
//! [`ChronosOutcome`]: crate::report::ChronosOutcome

use crate::chronos::{check_ra_consuming, check_si_consuming, ChronosOptions};
use crate::chronos_rc::check_rc_consuming;
use crate::chronos_ser::check_ser_consuming;
use aion_types::check::{CheckEvent, Checker, Outcome};
use aion_types::{DataKind, History, IsolationLevel, Transaction};

/// An offline CHRONOS checking session: buffers the stream, checks at
/// [`finish`](Checker::finish) against any built-in [`IsolationLevel`]
/// (RC, RA, SI, SER — each dispatching to its batch twin).
///
/// ```
/// use aion_core::{ChronosChecker, ChronosOptions};
/// use aion_types::{Checker, DataKind, IsolationLevel, Key, TxnBuilder, Value};
///
/// let mut session =
///     ChronosChecker::new(IsolationLevel::Si, DataKind::Kv, ChronosOptions::default());
/// session.feed(
///     TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(7)).build(), 0);
/// session.feed(
///     TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(7)).build(), 1);
/// let outcome = session.finish();
/// assert!(outcome.is_ok());
/// assert_eq!(outcome.checker, "chronos-si");
/// ```
pub struct ChronosChecker {
    level: IsolationLevel,
    opts: ChronosOptions,
    history: History,
}

impl ChronosChecker {
    /// A session checking `level` over `kind`-typed data.
    pub fn new(level: IsolationLevel, kind: DataKind, opts: ChronosOptions) -> ChronosChecker {
        ChronosChecker { level, opts, history: History::new(kind) }
    }

    /// A read-committed session with default options.
    pub fn rc(kind: DataKind) -> ChronosChecker {
        ChronosChecker::new(IsolationLevel::ReadCommitted, kind, ChronosOptions::default())
    }

    /// A read-atomic session with default options.
    pub fn ra(kind: DataKind) -> ChronosChecker {
        ChronosChecker::new(IsolationLevel::ReadAtomic, kind, ChronosOptions::default())
    }

    /// A snapshot-isolation session with default options.
    pub fn si(kind: DataKind) -> ChronosChecker {
        ChronosChecker::new(IsolationLevel::Si, kind, ChronosOptions::default())
    }

    /// A serializability session with default options.
    pub fn ser(kind: DataKind) -> ChronosChecker {
        ChronosChecker::new(IsolationLevel::Ser, kind, ChronosOptions::default())
    }

    /// Transactions buffered so far.
    pub fn buffered(&self) -> usize {
        self.history.len()
    }
}

impl Checker for ChronosChecker {
    fn name(&self) -> &'static str {
        match self.level {
            IsolationLevel::ReadCommitted => "chronos-rc",
            IsolationLevel::ReadAtomic => "chronos-ra",
            IsolationLevel::Si => "chronos-si",
            IsolationLevel::Ser => "chronos-ser",
            // Non-exhaustive upstream: a new lattice level needs a name
            // here before a session can be opened at it.
            other => unreachable!("ChronosChecker has no name for level {other:?}"),
        }
    }

    fn feed(&mut self, txn: Transaction, _now_ms: u64) -> Vec<CheckEvent> {
        self.history.push(txn);
        Vec::new()
    }

    fn tick(&mut self, _now_ms: u64) -> Vec<CheckEvent> {
        Vec::new()
    }

    fn finish(self) -> Outcome {
        let name = self.name();
        let out = match self.level {
            IsolationLevel::ReadCommitted => check_rc_consuming(self.history, &self.opts),
            IsolationLevel::ReadAtomic => check_ra_consuming(self.history, &self.opts),
            IsolationLevel::Si => check_si_consuming(self.history, &self.opts),
            IsolationLevel::Ser => check_ser_consuming(self.history, &self.opts),
            // A level added to the lattice without a CHRONOS twin yet:
            // a typed refusal, never a silently-wrong verdict.
            level => return Outcome::unsupported(name, level, self.history.len()),
        };
        Outcome::new(name, out.report, out.txns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{AxiomKind, Key, TxnBuilder, Value};

    fn t(tid: u64, sid: u32, sno: u32, s: u64, c: u64) -> TxnBuilder {
        TxnBuilder::new(tid).session(sid, sno).interval(s, c)
    }

    #[test]
    fn adapter_matches_batch_checker() {
        let mut ck = ChronosChecker::si(DataKind::Kv);
        assert_eq!(ck.feed(t(1, 0, 0, 1, 2).put(Key(1), Value(5)).build(), 0), vec![]);
        assert_eq!(ck.feed(t(2, 1, 0, 3, 4).read(Key(1), Value(9)).build(), 1), vec![]);
        assert_eq!(ck.tick(10_000), vec![], "offline: the clock is meaningless");
        assert_eq!(ck.buffered(), 2);
        let out = ck.finish();
        assert_eq!(out.checker, "chronos-si");
        assert_eq!(out.txns, 2);
        assert_eq!(out.report.count(AxiomKind::Ext), 1);
        assert!(!out.is_ok());
    }

    #[test]
    fn ser_adapter_checks_commit_visibility() {
        let mut ck = ChronosChecker::ser(DataKind::Kv);
        ck.feed(t(1, 0, 0, 1, 2).put(Key(1), Value(1)).build(), 0);
        ck.feed(t(2, 1, 0, 3, 6).put(Key(1), Value(2)).build(), 0);
        ck.feed(t(3, 2, 0, 4, 7).read(Key(1), Value(1)).build(), 0);
        let out = ck.finish();
        assert_eq!(out.checker, "chronos-ser");
        assert_eq!(out.report.count(AxiomKind::Ext), 1, "{}", out.report);
        assert_eq!(out.report.count(AxiomKind::NoConflict), 0, "SER skips NOCONFLICT");
    }
}
