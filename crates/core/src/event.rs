//! Event construction and the sorting stage.
//!
//! CHRONOS's first step is to sort all start/commit timestamps in ascending
//! order (paper line 2:2), defining the timestamp-based arbitration order
//! (Definition 5). Building the event list also surfaces integrity issues
//! (Eq. (1), duplicate ids, cross-transaction timestamp collisions) so the
//! simulation loop can assume a sane event stream without panicking on
//! malformed input.

use aion_types::{
    CheckReport, EventKey, EventKind, FxHashMap, History, Timestamp, TxnId, Violation,
};

/// One sortable event: the key plus the index of the owning transaction in
/// the history's transaction vector.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Ordering key (timestamp, kind, tid).
    pub key: EventKey,
    /// Index into `History::txns`.
    pub idx: u32,
}

/// Build and sort the event list, reporting integrity violations into
/// `report`. Returns events in ascending `EventKey` order.
pub fn build_events(history: &History, report: &mut CheckReport) -> Vec<Event> {
    let mut events = Vec::with_capacity(history.txns.len() * 2);
    let mut seen_tids: FxHashMap<TxnId, u32> = FxHashMap::default();
    for (i, t) in history.txns.iter().enumerate() {
        let idx = i as u32;
        if seen_tids.insert(t.tid, idx).is_some() {
            report.push(Violation::DuplicateTid { tid: t.tid });
        }
        if t.start_ts > t.commit_ts {
            report.push(Violation::TimestampOrder {
                tid: t.tid,
                start_ts: t.start_ts,
                commit_ts: t.commit_ts,
            });
        }
        events.push(Event { key: t.start_event(), idx });
        events.push(Event { key: t.commit_event(), idx });
    }
    events.sort_unstable_by_key(|e| e.key);
    report_timestamp_collisions(&events, report);
    events
}

/// Scan adjacent sorted events for cross-transaction timestamp collisions.
/// A transaction sharing its own start and commit timestamp is legal
/// (read-only transactions); two *different* transactions sharing one
/// timestamp violates the unique-oracle assumption.
fn report_timestamp_collisions(events: &[Event], report: &mut CheckReport) {
    let mut last: Option<(Timestamp, TxnId)> = None;
    for e in events {
        if let Some((ts, tid)) = last {
            if ts == e.key.ts && tid != e.key.tid {
                report.push(Violation::DuplicateTimestamp { ts, t1: tid, t2: e.key.tid });
            }
        }
        last = Some((e.key.ts, e.key.tid));
    }
}

/// Convenience: is this event a start event?
impl Event {
    /// True for start events.
    #[inline]
    pub fn is_start(&self) -> bool {
        self.key.kind == EventKind::Start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{AxiomKind, DataKind, Key, TxnBuilder, Value};

    fn history(txns: Vec<aion_types::Transaction>) -> History {
        History { kind: DataKind::Kv, txns }
    }

    #[test]
    fn events_sorted_with_start_before_commit() {
        let h = history(vec![
            TxnBuilder::new(1).interval(1, 4).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2).interval(2, 3).put(Key(2), Value(1)).build(),
        ]);
        let mut r = CheckReport::new();
        let evs = build_events(&h, &mut r);
        assert!(r.is_ok());
        let order: Vec<(u64, bool)> = evs.iter().map(|e| (e.key.ts.get(), e.is_start())).collect();
        assert_eq!(order, vec![(1, true), (2, true), (3, false), (4, false)]);
    }

    #[test]
    fn readonly_same_ts_is_fine() {
        let h = history(vec![TxnBuilder::new(1).interval(5, 5).read(Key(1), Value(0)).build()]);
        let mut r = CheckReport::new();
        let evs = build_events(&h, &mut r);
        assert!(r.is_ok());
        assert!(evs[0].is_start());
        assert!(!evs[1].is_start());
    }

    #[test]
    fn eq1_violation_reported() {
        let h = history(vec![TxnBuilder::new(1).interval(9, 3).build()]);
        let mut r = CheckReport::new();
        build_events(&h, &mut r);
        assert_eq!(r.count(AxiomKind::Integrity), 1);
        assert!(matches!(r.violations[0], Violation::TimestampOrder { .. }));
    }

    #[test]
    fn duplicate_tid_reported() {
        let h = history(vec![
            TxnBuilder::new(1).interval(1, 2).build(),
            TxnBuilder::new(1).interval(3, 4).build(),
        ]);
        let mut r = CheckReport::new();
        build_events(&h, &mut r);
        assert!(r.violations.iter().any(|v| matches!(v, Violation::DuplicateTid { .. })));
    }

    #[test]
    fn cross_txn_timestamp_collision_reported() {
        let h = history(vec![
            TxnBuilder::new(1).interval(1, 5).build(),
            TxnBuilder::new(2).interval(5, 7).build(),
        ]);
        let mut r = CheckReport::new();
        build_events(&h, &mut r);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateTimestamp { ts: Timestamp(5), .. })));
    }
}
