//! Quickstart: generate a snapshot-isolation history, check it offline
//! with CHRONOS, then break it and watch the violations appear.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aion::prelude::*;

fn main() {
    // -- 1. A healthy database run -----------------------------------------
    // 2 000 transactions over 16 sessions against the MVCC SI engine
    // (the paper's Algorithm 1), collected with start/commit timestamps.
    let spec = WorkloadSpec::default()
        .with_txns(2_000)
        .with_sessions(16)
        .with_ops_per_txn(8)
        .with_keys(128);
    let history = generate_history(&spec, IsolationLevel::Si);
    println!(
        "generated {} committed transactions, {} operations, {} keys",
        history.stats().txns,
        history.stats().ops,
        history.stats().keys
    );

    let outcome = check_si(&history, &ChronosOptions::default());
    println!(
        "CHRONOS: {}  ({} txns in {})",
        outcome.report.summary(),
        outcome.txns,
        outcome.timings
    );
    assert!(outcome.is_ok(), "a healthy SI engine must produce a clean history");

    // -- 2. The same workload on a buggy engine ----------------------------
    // The engine occasionally skips its first-committer-wins check (lost
    // updates) and serves stale snapshots.
    let faults = FaultPlan {
        lost_update_rate: 0.01,
        stale_read_rate: 0.005,
        seed: 7,
        ..FaultPlan::default()
    };
    let broken = generate_faulty_history(&spec, faults);
    let outcome = check_si(&broken, &ChronosOptions::default());
    println!("CHRONOS on the buggy engine: {}", outcome.report.summary());
    assert!(!outcome.is_ok());
    for v in outcome.report.violations.iter().take(5) {
        println!("  e.g. {v}");
    }

    // -- 3. Collection-side bugs are caught too ----------------------------
    // Skew the *recorded* start timestamps of 1% of transactions: the
    // engine ran correctly, but the history now claims impossible reads.
    let mut skewed = history.clone();
    let perturbed = inject_clock_skew(&mut skewed, 0.01, 50, 42);
    let outcome = check_si(&skewed, &ChronosOptions::default());
    println!("CHRONOS after skewing {perturbed} start timestamps: {}", outcome.report.summary());
}
