//! The §V-D study as a runnable demo: inject each fault class into the
//! database substrate and compare what the timestamp-based checker
//! (CHRONOS) and a black-box checker (Elle) can see.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use aion::baselines::{check_elle_kv, Level};
use aion::prelude::*;

fn check(name: &str, history: &History) {
    let chronos = check_si_report(history);
    let elle = check_elle_kv(history, Level::Si);
    println!(
        "{name:<14} CHRONOS: {:<45} Elle: {}",
        chronos.summary(),
        if elle.accepted {
            "ACCEPT".to_string()
        } else {
            format!("REJECT ({} anomalies)", elle.anomalies.len())
        }
    );
    if !chronos.is_ok() {
        let by_kind = [
            AxiomKind::Session,
            AxiomKind::Int,
            AxiomKind::Ext,
            AxiomKind::NoConflict,
            AxiomKind::Integrity,
        ]
        .iter()
        .map(|k| format!("{k}:{}", chronos.count(*k)))
        .collect::<Vec<_>>()
        .join(" ");
        println!("{:14}   breakdown: {by_kind}", "");
    }
}

fn main() {
    let spec = WorkloadSpec::default().with_txns(10_000).with_sessions(16).with_keys(256);

    println!("--- engine faults (the database misbehaves) ---");
    check("baseline", &generate_history(&spec, IsolationLevel::Si));
    check(
        "lost-update",
        &generate_faulty_history(
            &spec,
            FaultPlan { lost_update_rate: 0.01, seed: 7, ..FaultPlan::default() },
        ),
    );
    check(
        "stale-read",
        &generate_faulty_history(
            &spec,
            FaultPlan { stale_read_rate: 0.01, seed: 7, ..FaultPlan::default() },
        ),
    );
    check(
        "int-anomaly",
        &generate_faulty_history(
            &spec,
            FaultPlan { int_anomaly_rate: 0.01, seed: 7, ..FaultPlan::default() },
        ),
    );

    println!("--- collection faults (the history lies) ---");
    let mut skewed = generate_history(&spec, IsolationLevel::Si);
    let n = inject_clock_skew(&mut skewed, 0.02, 60, 9);
    println!("(skewed {n} recorded start timestamps)");
    check("clock-skew", &skewed);

    println!();
    println!(
        "Note how the stale-read and clock-skew classes — timestamp-level \
         anomalies — slip past the black-box checker but are caught by \
         CHRONOS, the paper's §V-D observation."
    );

    // --- the anomaly-injection matrix -----------------------------------
    // Each `Anomaly` plants one textbook isolation bug into a *valid*
    // history and carries the verdict a correct checker must reach per
    // level. `experiments conformance` asserts the full (anomaly × level
    // × checker) matrix in CI; see docs/conformance.md.
    println!();
    println!("--- targeted anomaly injection (docs/conformance.md) ---");
    let base = generate_history(&spec.with_txns(2_000).with_ts_stride(16), IsolationLevel::Si);
    for &anomaly in Anomaly::ALL {
        let mut h = base.clone();
        let planted = anomaly.inject(&mut h, 0.2, 42);
        let report = check_si_report(&h);
        let p = anomaly.profile();
        println!(
            "{:<22} planted {planted:>3}   SI expects {:<18} got: {}",
            anomaly.name(),
            p.si.to_string(),
            report.summary()
        );
    }
}
