//! Write skew: the textbook anomaly that snapshot isolation permits and
//! serializability forbids — shown end-to-end with hand-crafted histories
//! and both checkers, plus the black-box baselines for comparison.
//!
//! The scenario: two doctors, each may go off call only if the other stays
//! on call. Both read the roster, both see the other on call, both leave.
//!
//! ```text
//! cargo run --release --example write_skew
//! ```

use aion::baselines::{check_emme_ser, check_emme_si};
use aion::prelude::*;

fn main() {
    let alice = Key(1); // 1 = on call, 0 = off
    let bob = Key(2);

    // Both start from the initial roster (both on call, modelled as the
    // initial value), then each writes the *other's* expectation.
    let history = History {
        kind: DataKind::Kv,
        txns: vec![
            // T1: Alice checks Bob (on call), goes off call.
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(10, 40)
                .read(bob, Value::INIT)
                .put(alice, Value(100)) // "off"
                .build(),
            // T2: Bob checks Alice (on call), goes off call — concurrently.
            TxnBuilder::new(2)
                .session(1, 0)
                .interval(20, 50)
                .read(alice, Value::INIT)
                .put(bob, Value(200)) // "off"
                .build(),
            // An auditor later observes both off call.
            TxnBuilder::new(3)
                .session(2, 0)
                .interval(60, 70)
                .read(alice, Value(100))
                .read(bob, Value(200))
                .build(),
        ],
    };

    let si = check_si(&history, &ChronosOptions::default());
    let ser = check_ser(&history, &ChronosOptions::default());
    println!("CHRONOS-SI : {}", si.report.summary());
    println!("CHRONOS-SER: {}", ser.report.summary());
    assert!(si.is_ok(), "write skew is legal under SI (disjoint write sets)");
    assert!(!ser.is_ok(), "under SER one doctor must have seen the other leave");
    for v in &ser.report.violations {
        println!("  SER violation: {v}");
    }

    // The baselines agree on the classification.
    let emme_si = check_emme_si(&history);
    let emme_ser = check_emme_ser(&history);
    println!(
        "Emme-SI: {}   Emme-SER: {}",
        if emme_si.accepted { "ACCEPT" } else { "REJECT" },
        if emme_ser.accepted { "ACCEPT" } else { "REJECT" },
    );
    assert!(emme_si.accepted && !emme_ser.accepted);

    // And the same pattern executed on a *serializable* engine cannot
    // happen: one transaction aborts or serializes after the other.
    let store = TwoPlStore::new(DataKind::Kv);
    let mut t1 = store.begin(SessionId(0), 0);
    t1.read(bob).unwrap();
    t1.put(alice, Value(100)).unwrap();
    let mut t2 = store.begin(SessionId(1), 0);
    // Bob's read of Alice's row blocks on the lock and aborts (no-wait).
    let blocked = t2.read(alice).is_err();
    println!(
        "on the 2PL engine, Bob's concurrent check {}",
        if blocked { "aborts" } else { "proceeds" }
    );
    t1.commit().unwrap();
    assert!(blocked, "strict 2PL prevents the skew");
}
