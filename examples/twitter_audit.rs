//! Audit an application workload: run the Twitter clone (paper §V-A1)
//! against both engines and check SI offline and online. Twitter's
//! ever-growing key space (every tweet is a fresh key) is the stress case
//! for AION's versioned frontier (paper Fig. 12d).
//!
//! ```text
//! cargo run --release --example twitter_audit
//! ```

use aion::online::{feed_plan, run_plan, FeedConfig, OnlineChecker};
use aion::prelude::*;
use aion::workload::apps::twitter::{twitter_templates, TwitterParams};
use aion::workload::run_interleaved;

fn main() {
    let params = TwitterParams { users: 500, timeline_fanout: 8, seed: 42 };
    let templates = twitter_templates(20_000, &params);

    // Execute on the SI engine with 24 interleaved sessions.
    let store = MvccStore::new(DataKind::Kv);
    let run = run_interleaved(&store, &templates, 24, 42);
    let history = run.history;
    let stats = history.stats();
    println!(
        "Twitter: {} txns committed ({} aborted attempts), {} ops over {} keys",
        stats.txns, run.aborted_attempts, stats.ops, stats.keys
    );

    // Offline audit.
    let offline = check_si(&history, &ChronosOptions::default());
    println!("offline CHRONOS: {} in {}", offline.report.summary(), offline.timings);
    assert!(offline.is_ok());

    // Online audit with realistic collection delays.
    let plan = feed_plan(&history, &FeedConfig::default());
    let online = run_plan(OnlineChecker::new_si(history.kind), &plan);
    println!(
        "online AION: {} at {:.0} TPS ({} re-evaluations due to out-of-order arrivals)",
        online.outcome.report.summary(),
        online.mean_tps(),
        online.outcome.stats.reevaluations
    );
    assert!(online.outcome.is_ok());

    // Same templates on the serializable engine, audited under SER.
    let store = TwoPlStore::new(DataKind::Kv);
    let run = run_interleaved(&store, &templates, 24, 42);
    let ser = check_ser(&run.history, &ChronosOptions::default());
    println!(
        "2PL engine under SER checking: {} ({} txns, {} skipped by no-wait aborts)",
        ser.report.summary(),
        run.committed,
        run.skipped
    );
    assert!(ser.is_ok());
}
