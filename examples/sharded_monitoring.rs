//! Sharded online monitoring: the same continuous CDC-style stream as
//! the `online_monitoring` example, checked by a
//! [`ShardedChecker`](aion::prelude::ShardedChecker) — N key-partitioned
//! worker threads behind one coordinator that owns the global SESSION
//! and integrity checks, merges cross-shard `ExtFinalized`s, and
//! sequences every worker's [`CheckEvent`]s onto one outbound stream.
//!
//! Verdicts are identical to the single-threaded checker's for any
//! shard count (see `crates/online/tests/sharded_equivalence.rs`); what
//! changes is who does the work. The example runs the same plan through
//! one shard and four and prints both wall-clock timings — on a
//! multi-core machine the four-way run overlaps checking with routing.
//!
//! ```text
//! cargo run --release --example sharded_monitoring
//! ```

use aion::online::{feed_plan, FeedConfig, IsolationLevel, OnlineChecker};
use aion::prelude::*;
use std::time::Instant;

fn main() {
    // A 20K-transaction SI history, streamed like the paper's §VI-C
    // stability study: batches of 500, per-transaction delay
    // ~ N(100, 10²) ms, so arrivals are out of commit order.
    let spec = WorkloadSpec::default().with_txns(20_000).with_sessions(24).with_ops_per_txn(8);
    let history = generate_history(&spec, IsolationLevel::Si);
    let feed = FeedConfig {
        batch_size: 500,
        batch_interval_ms: 1_000,
        delay_mean_ms: 100.0,
        delay_std_ms: 10.0,
        seed: 42,
    };
    let plan = feed_plan(&history, &feed);
    println!("streaming {} transactions across shard counts:\n", plan.len());

    let mut single_tps = 0.0f64;
    for shards in [1usize, 4] {
        let mut checker = OnlineChecker::builder()
            .kind(history.kind)
            .level(IsolationLevel::Si)
            .ext_timeout_ms(5_000)
            .shards(shards)
            .build_sharded()
            .expect("open sharded session");
        println!("== {} shard(s) ==", checker.num_shards());

        // Drive through the polymorphic `Checker` trait; show the first
        // few merged events — they arrive on one stream no matter which
        // worker produced them.
        const SHOW: usize = 5;
        let mut shown = 0usize;
        let mut flips = 0usize;
        let mut finalizations = 0usize;
        let start = Instant::now();
        for (at, txn) in &plan {
            let mut events = Checker::tick(&mut checker, *at);
            events.extend(Checker::feed(&mut checker, txn.clone(), *at));
            for event in &events {
                match event {
                    CheckEvent::VerdictFlip { .. } => flips += 1,
                    CheckEvent::ExtFinalized { .. } => finalizations += 1,
                    _ => {}
                }
                if shown < SHOW {
                    println!("  [t={at}ms] {event}");
                    shown += 1;
                }
            }
        }
        // End-of-stream drain: a synchronous barrier that surfaces every
        // event still in flight from the workers (plus the outstanding
        // finalizations) before finish().
        for event in Checker::tick(&mut checker, u64::MAX) {
            match event {
                CheckEvent::VerdictFlip { .. } => flips += 1,
                CheckEvent::ExtFinalized { .. } => finalizations += 1,
                _ => {}
            }
        }
        let wall = start.elapsed();
        let outcome = checker.finish();
        let tps = outcome.stats.received as f64 / wall.as_secs_f64().max(1e-9);
        if shards == 1 {
            single_tps = tps;
        }
        println!(
            "  {}: {} txns in {:.2}s wall ({:.0} TPS{}), {} flips, {} finalizations",
            outcome.checker,
            outcome.stats.received,
            wall.as_secs_f64(),
            tps,
            if shards == 1 {
                String::new()
            } else {
                format!(", {:.2}x vs single", tps / single_tps.max(1e-9))
            },
            flips,
            finalizations,
        );
        println!("  report: {}\n", outcome.report.summary());
        assert!(outcome.is_ok(), "valid history must pass at {shards} shards");
        assert_eq!(outcome.stats.received, plan.len());
        // Every transaction that held tentative verdicts surfaces exactly
        // one merged ExtFinalized; txns settled at arrival (e.g.
        // write-only) finalize silently, exactly like the single checker.
        assert!(
            finalizations > 0 && finalizations <= outcome.stats.finalized,
            "finalization events ({finalizations}) must be positive and bounded by \
             finalized txns ({})",
            outcome.stats.finalized
        );
    }
    println!("verdicts agree at every shard count; see docs/benchmarks.md for scaling numbers");
}
