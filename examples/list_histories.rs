//! List histories: the paper's second data type (§IV-B — TiDB/YugabyteDB
//! model lists as comma-separated TEXT columns with `INSERT ... ON
//! DUPLICATE KEY UPDATE` appends). Appends make version order *observable*
//! (every read reveals the whole prefix), which is why ElleList is exact
//! where ElleKV is not — and checking splits naturally into a prefix (EXT)
//! and a suffix (INT) obligation.
//!
//! ```text
//! cargo run --release --example list_histories
//! ```

use aion::baselines::{check_elle_list, Level};
use aion::prelude::*;

fn main() {
    // A healthy list workload on the MVCC engine.
    let spec = WorkloadSpec::default()
        .with_txns(5_000)
        .with_sessions(16)
        .with_ops_per_txn(6)
        .with_keys(64)
        .with_kind(DataKind::List)
        .with_read_ratio(0.4);
    let history = generate_history(&spec, IsolationLevel::Si);
    let stats = history.stats();
    println!("list history: {} txns, {} ops over {} keys", stats.txns, stats.ops, stats.keys);

    let chronos = check_si(&history, &ChronosOptions::default());
    let elle = check_elle_list(&history, Level::Si);
    println!(
        "CHRONOS: {}   ElleList: {}",
        chronos.report.summary(),
        if elle.accepted { "ACCEPT" } else { "REJECT" }
    );
    assert!(chronos.is_ok() && elle.is_ok());

    // Hand-crafted anomalies show the EXT/INT split.
    let k = Key(1);

    // 1. Lost prefix: the transaction sees its own append but not the
    //    committed prefix — the snapshot was wrong → EXT.
    let mut h = History::new(DataKind::List);
    h.push(TxnBuilder::new(1).session(0, 0).interval(1, 2).append(k, Value(10)).build());
    h.push(
        TxnBuilder::new(2)
            .session(1, 0)
            .interval(3, 4)
            .append(k, Value(20))
            .read_list(k, vec![Value(20)]) // missing the committed [10]
            .build(),
    );
    let r = check_si_report(&h);
    println!("lost prefix   → {}", r.summary());
    assert_eq!(r.count(AxiomKind::Ext), 1);

    // 2. Lost append: the transaction loses its *own* write → INT.
    let mut h = History::new(DataKind::List);
    h.push(
        TxnBuilder::new(1)
            .session(0, 0)
            .interval(1, 2)
            .append(k, Value(10))
            .read_list(k, vec![]) // own append invisible
            .build(),
    );
    let r = check_si_report(&h);
    println!("lost append   → {}", r.summary());
    assert_eq!(r.count(AxiomKind::Int), 1);

    // 3. Concurrent appenders: NOCONFLICT, even though no read observes it.
    let mut h = History::new(DataKind::List);
    h.push(TxnBuilder::new(1).session(0, 0).interval(1, 4).append(k, Value(1)).build());
    h.push(TxnBuilder::new(2).session(1, 0).interval(2, 5).append(k, Value(2)).build());
    let r = check_si_report(&h);
    println!("overlap write → {}", r.summary());
    assert_eq!(r.count(AxiomKind::NoConflict), 1);

    // Online: the append cascade re-derives published lists when a base
    // arrives late (see aion-online's checker docs).
    let mut ck = OnlineChecker::builder().kind(DataKind::List).build().expect("open session");
    ck.receive(TxnBuilder::new(2).session(0, 0).interval(3, 4).append(k, Value(20)).build(), 0);
    ck.receive(
        TxnBuilder::new(3)
            .session(1, 0)
            .interval(5, 6)
            .read_list(k, vec![Value(10), Value(20)])
            .build(),
        1,
    );
    // The reader looks wrong until the first appender shows up...
    ck.receive(TxnBuilder::new(1).session(2, 0).interval(1, 2).append(k, Value(10)).build(), 2);
    let out = ck.finish();
    println!("out-of-order  → {}", out.report.summary());
    assert!(out.is_ok());
}
