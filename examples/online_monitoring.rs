//! Online monitoring: stream a history into AION the way a CDC collector
//! would — in batches, with per-transaction network delays that scramble
//! the arrival order — and watch the incremental [`CheckEvent`]s come
//! out *while the history streams in*: tentative EXT verdicts
//! flip-flopping and settling, transactions finalizing at their
//! timeouts, and spill-to-disk GC keeping memory bounded.
//!
//! ```text
//! cargo run --release --example online_monitoring
//! ```

use aion::online::{feed_plan, FeedConfig, IsolationLevel, OnlineChecker, OnlineGcPolicy};
use aion::prelude::*;
use std::time::Instant;

fn main() {
    // A 20K-transaction SI history, like the paper's §VI-C stability study.
    let spec = WorkloadSpec::default().with_txns(20_000).with_sessions(24).with_ops_per_txn(8);
    let history = generate_history(&spec, IsolationLevel::Si);

    // Collector model: batches of 500 dispatched once per (virtual) second,
    // per-transaction delay ~ N(100, 10²) ms. The run spans 40 s of virtual
    // time, so the 5 s EXT timeouts expire during the run and GC can work.
    let feed = FeedConfig {
        batch_size: 500,
        batch_interval_ms: 1_000,
        delay_mean_ms: 100.0,
        delay_std_ms: 10.0,
        seed: 42,
    };
    let plan = feed_plan(&history, &feed);
    let out_of_order = plan.windows(2).filter(|w| w[0].1.commit_ts > w[1].1.commit_ts).count();
    println!(
        "streaming {} transactions; {} adjacent arrivals out of commit order",
        plan.len(),
        out_of_order
    );

    let mut checker = OnlineChecker::builder()
        .kind(history.kind)
        .level(IsolationLevel::Si)
        .ext_timeout_ms(5_000) // the paper's conservative 5 s
        .gc(OnlineGcPolicy::Checking { max_txns: 4_000 })
        .track_flip_details(true)
        .build()
        .expect("open checking session");

    // Drive the session through the polymorphic `Checker` trait, printing
    // the first few incremental events as they stream out — verdicts are
    // visible long before finish().
    const SHOW: usize = 8;
    let mut shown = 0usize;
    let mut counts = (0usize, 0usize, 0usize); // flips, finalizations, spills
    let start = Instant::now();
    for (at, txn) in &plan {
        let mut events = Checker::tick(&mut checker, *at);
        events.extend(Checker::feed(&mut checker, txn.clone(), *at));
        for event in &events {
            match event {
                CheckEvent::VerdictFlip { .. } => counts.0 += 1,
                CheckEvent::ExtFinalized { .. } => counts.1 += 1,
                CheckEvent::SpillPass { .. } => counts.2 += 1,
                _ => {}
            }
            if shown < SHOW {
                println!("  [t={at}ms] {event}");
                shown += 1;
            }
        }
    }
    let wall = start.elapsed();
    println!(
        "mid-stream events: {} verdict flips, {} finalizations, {} spill passes",
        counts.0, counts.1, counts.2
    );
    assert!(
        counts.0 + counts.1 > 0,
        "a 40s run with 5s timeouts must surface incremental events before finish()"
    );

    let outcome = checker.finish();
    println!(
        "checked {} txns in {:.2}s wall ({:.0} TPS): {}",
        outcome.stats.received,
        wall.as_secs_f64(),
        outcome.stats.received as f64 / wall.as_secs_f64().max(1e-9),
        outcome.report.summary()
    );
    let flips = &outcome.flips;
    println!(
        "flip-flops: {} verdict switches over {} (txn,key) pairs in {} transactions",
        flips.total_flips, flips.pairs_with_flips, flips.txns_with_flips
    );
    println!(
        "  flips per pair [x1 x2 x3 x4+]: {:?};  rectification ms buckets {:?}",
        flips.flip_histogram,
        flips.rectify_histogram()
    );
    let stats = outcome.stats;
    println!(
        "gc: {} spill passes, {} txns spilled ({} KiB), {} reloaded, peak resident {}",
        stats.gc_spills,
        stats.spilled_txns,
        stats.spill_bytes / 1024,
        stats.reloaded_txns,
        stats.peak_resident_txns
    );
    assert!(outcome.is_ok(), "valid history, all false alarms must have been rectified");
}
