//! Online monitoring: stream a history into AION the way a CDC collector
//! would — in batches, with per-transaction network delays that scramble
//! the arrival order — and watch tentative EXT verdicts flip-flop and
//! settle, while spill-to-disk GC keeps memory bounded.
//!
//! ```text
//! cargo run --release --example online_monitoring
//! ```

use aion::online::{feed_plan, run_plan, AionConfig, FeedConfig, Mode, OnlineChecker, OnlineGcPolicy};
use aion::prelude::*;

fn main() {
    // A 20K-transaction SI history, like the paper's §VI-C stability study.
    let spec = WorkloadSpec::default().with_txns(20_000).with_sessions(24).with_ops_per_txn(8);
    let history = generate_history(&spec, IsolationLevel::Si);

    // Collector model: batches of 500 dispatched once per (virtual) second,
    // per-transaction delay ~ N(100, 10²) ms. The run spans 40 s of virtual
    // time, so the 5 s EXT timeouts expire during the run and GC can work.
    let feed = FeedConfig {
        batch_size: 500,
        batch_interval_ms: 1_000,
        delay_mean_ms: 100.0,
        delay_std_ms: 10.0,
        seed: 42,
    };
    let plan = feed_plan(&history, &feed);
    let out_of_order = plan.windows(2).filter(|w| w[0].1.commit_ts > w[1].1.commit_ts).count();
    println!(
        "streaming {} transactions; {} adjacent arrivals out of commit order",
        plan.len(),
        out_of_order
    );

    let checker = OnlineChecker::new(AionConfig {
        kind: history.kind,
        mode: Mode::Si,
        ext_timeout_ms: 5_000, // the paper's conservative 5 s
        gc: OnlineGcPolicy::Checking { max_txns: 4_000 },
        track_flip_details: true,
        ..AionConfig::default()
    });
    let run = run_plan(checker, &plan);

    println!(
        "checked {} txns in {:.2}s wall ({:.0} TPS): {}",
        run.processed,
        run.wall.as_secs_f64(),
        run.mean_tps(),
        run.outcome.report.summary()
    );
    let flips = &run.outcome.flips;
    println!(
        "flip-flops: {} verdict switches over {} (txn,key) pairs in {} transactions",
        flips.total_flips, flips.pairs_with_flips, flips.txns_with_flips
    );
    println!(
        "  flips per pair [x1 x2 x3 x4+]: {:?};  rectification ms buckets {:?}",
        flips.flip_histogram,
        flips.rectify_histogram()
    );
    let stats = run.outcome.stats;
    println!(
        "gc: {} spill passes, {} txns spilled ({} KiB), {} reloaded, peak resident {}",
        stats.gc_spills,
        stats.spilled_txns,
        stats.spill_bytes / 1024,
        stats.reloaded_txns,
        stats.peak_resident_txns
    );
    assert!(run.outcome.is_ok(), "valid history, all false alarms must have been rectified");
}
